package bench

import (
	goruntime "runtime"
	"testing"
	"time"

	"vxq/internal/jsonparse"
)

// The parse-kernel microbenchmarks: tokens flowing through the projector on
// the project-1-of-N-fields and skip-whole-record shapes, across the three
// skip implementations (structural index, byte-class scan, token-level
// reference). Run with -benchmem: the bytes/s column is the headline, and
// the per-record allocation count is reported as a custom metric.

func benchParseShape(b *testing.B, shape, mode string) {
	b.Helper()
	data, records := ParseBenchStream(4 << 20)
	path, err := ParseBenchPath(shape)
	if err != nil {
		b.Fatal(err)
	}
	skip, err := ParseBenchMode(mode)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanParseBench(data, path, skip); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	goruntime.ReadMemStats(&m1)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(int64(b.N)*int64(records)), "allocs/record")
}

// BenchmarkProjectOneField: project 1 small field from ~1 KiB records with
// the structural-index kernel — the acceptance-criteria shape.
func BenchmarkProjectOneField(b *testing.B) { benchParseShape(b, "project1", "index") }

// BenchmarkProjectOneFieldBytes is the same shape through the byte-class
// structural scan (the pre-SWAR kernel).
func BenchmarkProjectOneFieldBytes(b *testing.B) { benchParseShape(b, "project1", "bytes") }

// BenchmarkProjectOneFieldReference is the same shape through the
// token-level reference skip (the pre-kernel behaviour).
func BenchmarkProjectOneFieldReference(b *testing.B) { benchParseShape(b, "project1", "reference") }

// BenchmarkSkipWholeRecord: a projection that matches nothing, so every
// record is skipped whole — the pure skip throughput ceiling, through the
// structural-index kernel.
func BenchmarkSkipWholeRecord(b *testing.B) { benchParseShape(b, "skiprecord", "index") }

// BenchmarkSkipWholeRecordBytes is the byte-class counterpart.
func BenchmarkSkipWholeRecordBytes(b *testing.B) { benchParseShape(b, "skiprecord", "bytes") }

// BenchmarkSkipWholeRecordReference is the token-level counterpart.
func BenchmarkSkipWholeRecordReference(b *testing.B) { benchParseShape(b, "skiprecord", "reference") }

// BenchmarkBitmapBuilder runs phase 1 alone: IndexBlock over every 64-byte
// block of the workload with carried state, no consumer.
func BenchmarkBitmapBuilder(b *testing.B) {
	data, _ := ParseBenchStream(4 << 20)
	blocks := len(data) / 64
	data = data[:blocks*64]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st jsonparse.StructState
		for off := 0; off < len(data); off += 64 {
			m := jsonparse.IndexBlock(data[off:off+64], &st)
			sink ^= m.Structural
		}
	}
	b.StopTimer()
	if sink == 0xdeadbeef {
		b.Log(sink)
	}
}

// BenchmarkLexerTokens streams every token of the workload through Next —
// the tokenizer floor without any skip at all (full parse minus tree
// building).
func BenchmarkLexerTokens(b *testing.B) {
	data, _ := ParseBenchStream(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := jsonparse.NewLexer(data)
		for {
			if err := l.Next(); err != nil {
				b.Fatal(err)
			}
			if l.Kind == jsonparse.TokEOF {
				break
			}
		}
	}
}

// TestParseKernelBounds pins the structural-index kernel's committed claims
// in machine-independent form (ratios against in-process baselines, not
// absolute MB/s, so CI noise and slow runners cannot flip it):
//
//   - skiprecord: the index kernel beats the token-level reference by >= 2x
//     and the byte-class scan by >= 1.2x;
//   - project1: the index kernel beats the reference by >= 1.5x;
//   - project1 allocations: <= 0.05 allocs/record (the interned-item scan);
//   - all modes emit identical item counts;
//   - the phase-1 bitmap builder allocates nothing.
func TestParseKernelBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping kernel bounds in -short")
	}
	const minDur = 300 * time.Millisecond
	data, records := ParseBenchStream(4 << 20)
	run := func(shape, mode string) ParseBenchResult {
		t.Helper()
		r, err := MeasureParseBench(shape, mode, data, records, minDur)
		if err != nil {
			t.Fatalf("%s/%s: %v", shape, mode, err)
		}
		t.Logf("%s/%s: %.0f MB/s, %.4f allocs/record, emitted %d",
			shape, mode, r.MBPerSec, r.AllocsPerRecord, r.Emitted)
		return r
	}
	for _, shape := range []string{"project1", "skiprecord"} {
		idx := run(shape, "index")
		byt := run(shape, "bytes")
		ref := run(shape, "reference")
		if idx.Emitted != ref.Emitted || byt.Emitted != ref.Emitted {
			t.Errorf("%s: emitted diverges: index %d, bytes %d, reference %d",
				shape, idx.Emitted, byt.Emitted, ref.Emitted)
		}
		if speedup := ref.Seconds / idx.Seconds; speedup < 1.5 {
			t.Errorf("%s: index speedup over reference = %.2fx, want >= 1.5x (index %.4fs, reference %.4fs)",
				shape, speedup, idx.Seconds, ref.Seconds)
		}
		if shape == "skiprecord" {
			if speedup := ref.Seconds / idx.Seconds; speedup < 2 {
				t.Errorf("skiprecord: index speedup over reference = %.2fx, want >= 2x", speedup)
			}
			if speedup := byt.Seconds / idx.Seconds; speedup < 1.2 {
				t.Errorf("skiprecord: index speedup over byte-class = %.2fx, want >= 1.2x (index %.4fs, bytes %.4fs)",
					speedup, idx.Seconds, byt.Seconds)
			}
		}
		if shape == "project1" && idx.AllocsPerRecord > 0.05 {
			t.Errorf("project1 index allocs/record = %.4f, want <= 0.05", idx.AllocsPerRecord)
		}
	}
	bb := MeasureBitmapBuilder(data, minDur)
	t.Logf("bitmap builder: %.2f GB/s, %.4f allocs/chunk", bb.GBPerSec, bb.AllocsPerChunk)
	if bb.AllocsPerChunk > 0.001 {
		t.Errorf("bitmap builder allocs/chunk = %.4f, want 0", bb.AllocsPerChunk)
	}
}
