package bench

import (
	"strings"
	"testing"

	"vxq/internal/baselines/mongosim"
	"vxq/internal/baselines/sparksim"
	"vxq/internal/core"
	"vxq/internal/item"
)

// TestAllExperimentsRun executes every registered experiment at the quick
// scale and sanity-checks the produced tables.
func TestAllExperimentsRun(t *testing.T) {
	exps := All()
	if len(exps) != 18 {
		t.Fatalf("registered experiments = %d, want 18 (one per table/figure)", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Settings{})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tbl.Header))
					}
				}
				s := tbl.String()
				if !strings.Contains(s, tbl.Title) {
					t.Errorf("%s: rendering missing title", e.ID)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig13"); !ok {
		t.Error("fig13 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

// TestCrossSystemAgreement verifies that all systems compute the same
// answers on the same dataset — the baselines are fair comparisons, not
// strawmen.
func TestCrossSystemAgreement(t *testing.T) {
	src, _, err := sensorSource(defaultDataset(Settings{}))
	if err != nil {
		t.Fatal(err)
	}

	// Q0b selection count: VXQuery vs MongoDB vs Spark.
	res, _, err := runQuery(QueryQ0b, core.AllRules(), 2, src)
	if err != nil {
		t.Fatal(err)
	}
	vxqCount := len(res.Rows)

	st, err := mongosim.Load(src, "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	mongoDates, err := st.SelectDates(dec25Pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(mongoDates) != vxqCount {
		t.Errorf("Q0b: vxq=%d mongo=%d", vxqCount, len(mongoDates))
	}

	table, err := sparksim.Load(src, "/sensors", sparksim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sparkDates := table.SelectDates(dec25Pred)
	if len(sparkDates) != vxqCount {
		t.Errorf("Q0b: vxq=%d spark=%d", vxqCount, len(sparkDates))
	}

	// Q1 group counts: VXQuery vs MongoDB vs Spark.
	res, _, err = runQuery(QueryQ1, core.AllRules(), 2, src)
	if err != nil {
		t.Fatal(err)
	}
	var vxqTotal float64
	for _, row := range res.Rows {
		n, err := row[0].One()
		if err != nil {
			t.Fatal(err)
		}
		vxqTotal += float64(n.(item.Number))
	}
	mongoCounts, err := st.CountStationsByDate("TMIN")
	if err != nil {
		t.Fatal(err)
	}
	var mongoTotal float64
	for _, c := range mongoCounts {
		mongoTotal += float64(c)
	}
	if len(mongoCounts) != len(res.Rows) || mongoTotal != vxqTotal {
		t.Errorf("Q1: vxq groups=%d total=%v; mongo groups=%d total=%v",
			len(res.Rows), vxqTotal, len(mongoCounts), mongoTotal)
	}
	sparkCounts := table.CountStationsByDate("TMIN")
	var sparkTotal float64
	for _, c := range sparkCounts {
		sparkTotal += float64(c)
	}
	if len(sparkCounts) != len(res.Rows) || sparkTotal != vxqTotal {
		t.Errorf("Q1: vxq groups=%d total=%v; spark groups=%d total=%v",
			len(res.Rows), vxqTotal, len(sparkCounts), sparkTotal)
	}

	// Q2 average: VXQuery vs MongoDB (unwind+project strategy).
	res, _, err = runQuery(QueryQ2, core.AllRules(), 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("Q2 rows = %d", len(res.Rows))
	}
	q2it, err := res.Rows[0][0].One()
	if err != nil {
		t.Fatal(err)
	}
	vxqAvg := float64(q2it.(item.Number))
	mongoAvg, err := st.UnwindProjectJoin()
	if err != nil {
		t.Fatal(err)
	}
	if diff := vxqAvg - mongoAvg; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Q2: vxq=%v mongo=%v", vxqAvg, mongoAvg)
	}
}

// TestPipeliningShapeHolds asserts the headline result at harness scale:
// the pipelining rules must deliver a large speedup (the paper reports ~2
// orders of magnitude; we require at least 3x). The dataset is scaled up
// from the ablation default because frame pooling and scratch reuse shaved
// most of the unoptimized plan's constant per-tuple costs — the remaining
// gap is the asymptotic materialize-vs-stream difference, which needs
// enough data to dominate.
func TestPipeliningShapeHolds(t *testing.T) {
	src, _, err := sensorSource(ablationDataset(Settings{Factor: 8}))
	if err != nil {
		t.Fatal(err)
	}
	_, before, err := runQuery(QueryQ0b, core.RuleConfig{PathRules: true}, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := runQuery(QueryQ0b, core.RuleConfig{PathRules: true, PipeliningRules: true}, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if float64(before) < 3*float64(after) {
		t.Errorf("pipelining speedup too small: before=%v after=%v", before, after)
	}
}

// TestMongoCompressionShape asserts the Fig. 18b shape: stored bytes grow
// as documents shrink.
func TestMongoCompressionShape(t *testing.T) {
	big, _, err := sensorSource(sweepConfig(Settings{}, 30))
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := sensorSource(sweepConfig(Settings{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	stBig, err := mongosim.Load(big, "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	stSmall, err := mongosim.Load(small, "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	bigRatio := float64(stBig.StoredBytes) / float64(stBig.RawBytes)
	smallRatio := float64(stSmall.StoredBytes) / float64(stSmall.RawBytes)
	if smallRatio <= bigRatio {
		t.Errorf("compression ratio should degrade for small docs: 30/array=%.3f 1/array=%.3f",
			bigRatio, smallRatio)
	}
}
