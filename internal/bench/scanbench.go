package bench

import (
	"fmt"
	"time"

	"vxq/internal/frame"
	"vxq/internal/gen"
	"vxq/internal/hyracks"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// ScanScale parameterizes the morsel-scan skew workloads: one oversized file
// next to many small ones (skewed), versus the same total bytes spread
// evenly (uniform). The full scale reproduces the issue's acceptance
// workload — 1x64 MiB + 31x2 MiB — and the quick scale shrinks it 32x so the
// bench smoke finishes in seconds.
type ScanScale struct {
	// BigBytes is the size of the single oversized file.
	BigBytes int64
	// SmallBytes is the size of each of the remaining Files-1 files.
	SmallBytes int64
	// Files is the total file count.
	Files int
	// MorselSize is the scan split granularity for this scale.
	MorselSize int64
}

// QuickScanScale is the default laptop-friendly workload (1x2 MiB + 31x64
// KiB, 256 KiB morsels).
func QuickScanScale() ScanScale {
	return ScanScale{BigBytes: 2 << 20, SmallBytes: 64 << 10, Files: 32, MorselSize: 256 << 10}
}

// FullScanScale is the acceptance workload (1x64 MiB + 31x2 MiB, default
// morsels).
func FullScanScale() ScanScale {
	return ScanScale{BigBytes: 64 << 20, SmallBytes: 2 << 20, Files: 32, MorselSize: hyracks.DefaultMorselSize}
}

// TotalBytes is the workload's total input size (identical for the skewed
// and uniform variants).
func (s ScanScale) TotalBytes() int64 {
	return s.BigBytes + int64(s.Files-1)*s.SmallBytes
}

// sensorFileOfBytes generates one newline-delimited (SplitRecords) sensor
// file of roughly n bytes, so morsel-driven scans can split it on record
// boundaries.
func sensorFileOfBytes(n int64, idx int) []byte {
	probe := gen.Config{
		Seed: int64(idx) + 1, Files: 1, RecordsPerFile: 1,
		MeasurementsPerArray: 30, Stations: 50, YearMin: 2000, YearMax: 2014,
		SplitRecords: true,
	}
	per := int64(len(probe.File(0)))
	cfg := probe
	cfg.RecordsPerFile = int(n / per)
	if cfg.RecordsPerFile < 1 {
		cfg.RecordsPerFile = 1
	}
	return cfg.File(idx)
}

// SkewedScanSource builds the skewed collection: file 0 holds BigBytes,
// the rest SmallBytes each.
func SkewedScanSource(s ScanScale) (runtime.Source, int64) {
	docs := make(map[string][]byte, s.Files)
	var total int64
	for i := 0; i < s.Files; i++ {
		n := s.SmallBytes
		if i == 0 {
			n = s.BigBytes
		}
		d := sensorFileOfBytes(n, i)
		docs[fmt.Sprintf("sensor_%05d.json", i)] = d
		total += int64(len(d))
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}, total
}

// UniformScanSource builds the uniform collection: the same total bytes as
// the skewed one, spread evenly over Files files.
func UniformScanSource(s ScanScale) (runtime.Source, int64) {
	per := s.TotalBytes() / int64(s.Files)
	docs := make(map[string][]byte, s.Files)
	var total int64
	for i := 0; i < s.Files; i++ {
		d := sensorFileOfBytes(per, i)
		docs[fmt.Sprintf("sensor_%05d.json", i)] = d
		total += int64(len(d))
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}, total
}

// measurementsProjectPath is the DATASCAN projection of the sensor
// workloads.
func measurementsProjectPath() jsonparse.Path {
	p, err := jsonparse.ParsePath(`("root")()("results")()`)
	if err != nil {
		panic(err)
	}
	return p
}

// ScanCountJob builds the scan-dominated job the skew benchmarks run: a
// partitioned scan with a local count aggregate, merged into one global sum —
// so essentially all work is parsing, and almost nothing is shuffled.
func ScanCountJob(partitions int) *hyracks.Job {
	count := &hyracks.AggregateSpec{Aggs: []hyracks.AggDef{
		{Fn: runtime.MustAgg("agg-count"), Arg: runtime.ColumnEval{Col: 0}},
	}}
	sum := &hyracks.AggregateSpec{Aggs: []hyracks.AggDef{
		{Fn: runtime.MustAgg("agg-sum"), Arg: runtime.ColumnEval{Col: 0}},
	}}
	return &hyracks.Job{
		Fragments: []*hyracks.Fragment{
			{ID: 0, Source: hyracks.ScanSource{Collection: "/sensors", Project: measurementsProjectPath()},
				Ops: []hyracks.OpSpec{count}, Partitions: partitions, SinkExchange: 0},
			{ID: 1, Source: hyracks.ExchangeSource{Exchange: 0},
				Ops: []hyracks.OpSpec{sum}, Partitions: 1, SinkExchange: -1},
		},
		Exchanges: []*hyracks.Exchange{
			{ID: 0, Kind: hyracks.ExchangeMerge, ConsumerPartitions: 1},
		},
	}
}

// RunScanCount executes the scan-count job with the pipelined (work-stealing)
// executor and returns the result and wall-clock time.
func RunScanCount(src runtime.Source, partitions int, morselSize int64) (*hyracks.Result, time.Duration, error) {
	env := &hyracks.Env{
		Source:     src,
		Accountant: frame.NewAccountant(0),
		MorselSize: morselSize,
	}
	start := time.Now()
	res, err := hyracks.RunPipelined(ScanCountJob(partitions), env)
	elapsed := time.Since(start)
	if err != nil {
		return nil, 0, err
	}
	return res, elapsed, nil
}

// MorselsByPartition extracts the per-partition morsel counts of the scan
// fragment (fragment 0) from a result.
func MorselsByPartition(res *hyracks.Result) map[int]int {
	out := map[int]int{}
	for _, tt := range res.Tasks {
		if tt.Fragment == 0 {
			out[tt.Partition] += tt.Morsels
		}
	}
	return out
}
