package bench

import (
	"fmt"
	"time"

	"vxq/internal/baselines/mongosim"
	"vxq/internal/cluster"
	"vxq/internal/core"
	"vxq/internal/gen"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
	"vxq/internal/simsched"
)

// Multi-core and multi-node experiments (§5.3 speed-up, §5.4 cluster). The
// engine runs for real on every configuration; the staged executor measures
// each fragment-partition's single-core work and the simsched model
// schedules it on the modeled cluster (4 cores/node, like the paper's
// hardware). See DESIGN.md §4 for why this substitution preserves the
// relevant behaviour.

func init() {
	register(Experiment{
		ID:    "fig17",
		Paper: "Figure 17",
		Title: "Single-node speed-up: 1/2/4 partitions scale, 8 (hyperthreads) does not",
		Run:   runFig17,
	})
	register(Experiment{
		ID:    "fig20",
		Paper: "Figure 20",
		Title: "Cluster speed-up, 1-9 nodes, fixed dataset, all queries",
		Run:   runFig20,
	})
	register(Experiment{
		ID:    "fig21",
		Paper: "Figure 21",
		Title: "Cluster scale-up, fixed per-node dataset, all queries",
		Run:   runFig21,
	})
	register(Experiment{
		ID:    "fig22",
		Paper: "Figure 22",
		Title: "VXQuery vs AsterixDB cluster speed-up (Q0b, Q2)",
		Run:   runFig22,
	})
	register(Experiment{
		ID:    "fig23",
		Paper: "Figure 23",
		Title: "VXQuery vs AsterixDB cluster scale-up (Q0b, Q2)",
		Run:   runFig23,
	})
	register(Experiment{
		ID:    "fig24",
		Paper: "Figure 24",
		Title: "VXQuery vs MongoDB cluster speed-up (Q0b, Q2)",
		Run:   runFig24,
	})
	register(Experiment{
		ID:    "fig25",
		Paper: "Figure 25",
		Title: "VXQuery vs MongoDB cluster scale-up (Q0b, Q2)",
		Run:   runFig25,
	})
}

func runFig17(s Settings) ([]*Table, error) {
	src, totalBytes, err := sensorSource(defaultDataset(s))
	if err != nil {
		return nil, err
	}
	model := simsched.DefaultModel()
	t := &Table{
		Title: fmt.Sprintf("Single-node speed-up over partitions (dataset %s MB, 4 modeled cores)", mb(totalBytes)),
		Paper: "Figure 17: time drops ~linearly to 4 partitions; 8 hyperthreaded partitions give no improvement (slightly worse)",
		Header: []string{"query", "1 part (ms)", "2 parts (ms)", "4 parts (ms)", "8 parts (ms)",
			"speedup@4", "8 vs 4"},
	}
	for _, q := range Queries {
		var walls []time.Duration
		for _, parts := range []int{1, 2, 4, 8} {
			c, err := core.CompileQuery(q.Text, core.Options{Rules: core.AllRules(), Partitions: parts})
			if err != nil {
				return nil, err
			}
			res, _, err := measured(c.Job, src)
			if err != nil {
				return nil, err
			}
			wall, err := model.JobWall(c.Job, res, 1)
			if err != nil {
				return nil, err
			}
			walls = append(walls, wall)
		}
		t.Rows = append(t.Rows, []string{
			q.Name, ms(walls[0]), ms(walls[1]), ms(walls[2]), ms(walls[3]),
			ratio(walls[0], walls[2]), ratio(walls[3], walls[2]),
		})
	}
	return []*Table{t}, nil
}

var clusterNodeCounts = []int{1, 2, 3, 4, 5, 6, 7, 8, 9}

// clusterWall runs a query for a given node count and returns the modeled
// wall time.
func clusterWall(query string, nodes int, src runtime.Source) (time.Duration, error) {
	ex, err := cluster.Run(query, core.AllRules(), cluster.DefaultConfig(nodes), src)
	if err != nil {
		return 0, err
	}
	return ex.SimulatedWall, nil
}

func runFig20(s Settings) ([]*Table, error) {
	// Fixed dataset (the paper's 803 GB), split over the nodes in use.
	cfg := defaultDataset(s)
	cfg.Files = s.files(36) // divisible by many node counts
	src, totalBytes, err := sensorSource(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Cluster speed-up, fixed dataset %s MB (stands in for the paper's 803 GB)", mb(totalBytes)),
		Paper:  "Figure 20: speed-up proportional to node count for every query; Q2 slowest (self-join reads the data twice)",
		Header: append([]string{"query"}, nodeHeader()...),
	}
	for _, q := range Queries {
		row := []string{q.Name}
		for _, nodes := range clusterNodeCounts {
			wall, err := clusterWall(q.Text, nodes, src)
			if err != nil {
				return nil, fmt.Errorf("%s nodes=%d: %w", q.Name, nodes, err)
			}
			row = append(row, ms(wall))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

func runFig21(s Settings) ([]*Table, error) {
	// Per-node dataset fixed (the paper's 88 GB/node): data grows with the
	// cluster; times should stay roughly flat.
	base := defaultDataset(s)
	perNodeFiles := s.files(8)
	t := &Table{
		Title:  "Cluster scale-up, fixed per-node dataset (stands in for the paper's 88 GB/node)",
		Paper:  "Figure 21: execution time remains roughly constant as nodes and data grow together",
		Header: append([]string{"query"}, nodeHeader()...),
	}
	for _, q := range Queries {
		row := []string{q.Name}
		for _, nodes := range clusterNodeCounts {
			cfg := base
			cfg.Files = perNodeFiles * nodes
			src, _, err := sensorSource(cfg)
			if err != nil {
				return nil, err
			}
			wall, err := clusterWall(q.Text, nodes, src)
			if err != nil {
				return nil, fmt.Errorf("%s nodes=%d: %w", q.Name, nodes, err)
			}
			row = append(row, ms(wall))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

func nodeHeader() []string {
	out := make([]string, len(clusterNodeCounts))
	for i, n := range clusterNodeCounts {
		out[i] = fmt.Sprintf("%dn (ms)", n)
	}
	return out
}

// asterixClusterWall models the AsterixDB execution (same engine, no
// projection pushdown) on the cluster.
func asterixClusterWall(query string, nodes int, src runtime.Source) (time.Duration, error) {
	rules := core.AllRules()
	rules.NoProjectionPushdown = true
	cfg := cluster.DefaultConfig(nodes)
	c, err := core.CompileQuery(query, core.Options{Rules: rules, Partitions: cfg.TotalPartitions()})
	if err != nil {
		return 0, err
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src})
	if err != nil {
		return 0, err
	}
	return cfg.Model.JobWall(c.Job, res, nodes)
}

func vsAsterix(s Settings, scaleup bool, title, paper string) ([]*Table, error) {
	var tables []*Table
	for _, q := range []struct{ Name, Text string }{{"Q0b", QueryQ0b}, {"Q2", QueryQ2}} {
		t := &Table{
			Title:  fmt.Sprintf("%s — %s", title, q.Name),
			Paper:  paper,
			Header: []string{"nodes", "VXQuery (ms)", "AsterixDB (ms)", "AsterixDB/VXQuery"},
		}
		for _, nodes := range []int{1, 3, 5, 7, 9} {
			cfg := defaultDataset(s)
			if scaleup {
				cfg.Files = s.files(6) * nodes
			} else {
				cfg.Files = s.files(36)
			}
			src, _, err := sensorSource(cfg)
			if err != nil {
				return nil, err
			}
			vw, err := clusterWall(q.Text, nodes, src)
			if err != nil {
				return nil, err
			}
			aw, err := asterixClusterWall(q.Text, nodes, src)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", nodes), ms(vw), ms(aw), ratio(aw, vw),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig22(s Settings) ([]*Table, error) {
	return vsAsterix(s, false,
		"VXQuery vs AsterixDB speed-up (fixed dataset)",
		"Figure 22: VXQuery faster at every node count; the gap is the missing JSONiq pipelining rules")
}

func runFig23(s Settings) ([]*Table, error) {
	return vsAsterix(s, true,
		"VXQuery vs AsterixDB scale-up (fixed per-node dataset)",
		"Figure 23: both roughly flat; VXQuery consistently faster")
}

// mongoClusterWall models MongoDB's cluster execution: the measured
// single-thread query work is embarrassingly parallel over documents, so it
// is spread over the cluster's cores like one big stage.
func mongoClusterWall(st *mongosim.Store, queryTime time.Duration, nodes int, model simsched.Model) time.Duration {
	parts := nodes * model.CoresPerNode
	works := make([]time.Duration, parts)
	for i := range works {
		works[i] = queryTime / time.Duration(parts)
	}
	perNode := make([][]time.Duration, nodes)
	for p, node := range simsched.Placement(parts, nodes) {
		perNode[node] = append(perNode[node], works[p])
	}
	return model.StageWall(perNode) + model.StartupPerJob
}

func dec25Pred(d item.DateTime) bool {
	return d.Year >= 2003 && d.Month == 12 && d.Day == 25
}

// mongoTimes measures MongoDB's single-thread query work for Q0b and Q2
// over an already-loaded store. The Q2 path includes the unwind+project
// workaround the paper describes.
func mongoTimes(st *mongosim.Store) (q0b, q2 time.Duration, err error) {
	start := time.Now()
	if _, err = st.SelectDates(dec25Pred); err != nil {
		return 0, 0, err
	}
	q0b = time.Since(start)
	start = time.Now()
	if _, err = st.UnwindProjectJoin(); err != nil {
		return 0, 0, err
	}
	q2 = time.Since(start)
	return q0b, q2, nil
}

func vsMongo(s Settings, scaleup bool, title, paper string) ([]*Table, error) {
	model := simsched.DefaultModel()
	tq0b := &Table{
		Title:  title + " — Q0b",
		Paper:  paper + " | Q0b: MongoDB competitive/faster on selections (compressed storage)",
		Header: []string{"nodes", "VXQuery (ms)", "MongoDB (ms)"},
	}
	tq2 := &Table{
		Title:  title + " — Q2",
		Paper:  paper + " | Q2: VXQuery faster; MongoDB needs the unwind workaround (16 MB limit)",
		Header: []string{"nodes", "VXQuery (ms)", "MongoDB (ms)"},
	}
	for _, nodes := range []int{1, 3, 5, 7, 9} {
		cfg := defaultDataset(s)
		if scaleup {
			cfg.Files = s.files(6) * nodes
		} else {
			cfg.Files = s.files(36)
		}
		src, _, err := sensorSource(cfg)
		if err != nil {
			return nil, err
		}
		vq0b, err := clusterWall(QueryQ0b, nodes, src)
		if err != nil {
			return nil, err
		}
		vq2, err := clusterWall(QueryQ2, nodes, src)
		if err != nil {
			return nil, err
		}
		st, err := mongosim.Load(src, "/sensors")
		if err != nil {
			return nil, err
		}
		mq0b, mq2, err := mongoTimes(st)
		if err != nil {
			return nil, err
		}
		tq0b.Rows = append(tq0b.Rows, []string{fmt.Sprintf("%d", nodes),
			ms(vq0b), ms(mongoClusterWall(st, mq0b, nodes, model))})
		tq2.Rows = append(tq2.Rows, []string{fmt.Sprintf("%d", nodes),
			ms(vq2), ms(mongoClusterWall(st, mq2, nodes, model))})
	}
	return []*Table{tq0b, tq2}, nil
}

func runFig24(s Settings) ([]*Table, error) {
	return vsMongo(s, false, "VXQuery vs MongoDB speed-up (fixed dataset)", "Figure 24")
}

func runFig25(s Settings) ([]*Table, error) {
	return vsMongo(s, true, "VXQuery vs MongoDB scale-up (fixed per-node dataset)", "Figure 25")
}

var _ = gen.Config{} // keep import while experiments evolve
