package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/hyracks"
)

// profileSpanKeys is the documented trace span schema (DESIGN.md §Profiling):
// every span object of a -trace file must carry exactly these keys.
var profileSpanKeys = []string{
	"fragment", "partition", "stage", "name", "kind", "start_ns", "end_ns",
	"push_ns", "open_close_ns", "self_ns",
	"frames_in", "tuples_in", "bytes_in",
	"frames_out", "tuples_out", "bytes_out",
	"frames_forwarded", "frames_rebuilt",
	"mem_peak", "hash_collisions", "arena_bytes",
	"spilled_bytes", "spill_partitions", "spill_waves",
	"morsels", "morsel_steals", "morsels_skipped",
}

// TestProfileSmoke runs the paper's Q0, Q1 and Q2 end to end with profiling
// on (both executors) and validates the collected profile: a plan-shaped
// tree, a trace that round-trips through JSON with the documented span
// schema, and — on the staged executor, whose tasks run sequentially —
// operator self-times that account for the job wall clock. This is the test
// behind `make profile-smoke`.
func TestProfileSmoke(t *testing.T) {
	cfg := defaultDataset(Settings{})
	src, _, err := sensorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct{ name, text string }{
		{"Q0", QueryQ0},
		{"Q1", QueryQ1},
		{"Q2", QueryQ2},
	}
	for _, q := range queries {
		for _, staged := range []bool{true, false} {
			name := q.name + "/pipelined"
			if staged {
				name = q.name + "/staged"
			}
			t.Run(name, func(t *testing.T) {
				c, err := core.CompileQuery(q.text, core.Options{Rules: core.AllRules(), Partitions: 2})
				if err != nil {
					t.Fatal(err)
				}
				env := &hyracks.Env{Source: src, Accountant: frame.NewAccountant(0), Profile: true}
				var res *hyracks.Result
				if staged {
					res, err = hyracks.RunStaged(c.Job, env)
				} else {
					res, err = hyracks.RunPipelined(c.Job, env)
				}
				if err != nil {
					t.Fatal(err)
				}
				p := res.Profile
				if p == nil || p.Root == nil {
					t.Fatal("profiled run returned no profile tree")
				}
				if len(p.Spans) == 0 {
					t.Fatal("profiled run collected no spans")
				}
				if p.Root.Kind != "sink" {
					t.Errorf("profile root is %q (%s), want the sink", p.Root.Name, p.Root.Kind)
				}
				// Every query scans /sensors: the tree must reach a DATASCAN leaf.
				if !treeContains(p.Root, "DATASCAN") {
					t.Errorf("profile tree has no DATASCAN node:\n%s", p.String())
				}
				// The trace must serialize with the documented span schema.
				var buf bytes.Buffer
				if err := p.WriteTrace(&buf); err != nil {
					t.Fatal(err)
				}
				var raw struct {
					WallNS int64            `json:"wall_ns"`
					Spans  []map[string]any `json:"spans"`
				}
				if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
					t.Fatalf("trace is not valid JSON: %v", err)
				}
				if raw.WallNS <= 0 || len(raw.Spans) != len(p.Spans) {
					t.Errorf("trace header mismatch: wall %d, %d/%d spans", raw.WallNS, len(raw.Spans), len(p.Spans))
				}
				for _, sp := range raw.Spans {
					for _, k := range profileSpanKeys {
						if _, ok := sp[k]; !ok {
							t.Fatalf("trace span missing %q: %v", k, sp)
						}
					}
				}
				// Staged tasks run one after another, so summed operator
				// self-time must account for the job wall clock (within 10%
				// for scheduling gaps between tasks).
				if staged {
					sum := p.SelfSumNS()
					lo := float64(p.WallNS) * 0.9
					if float64(sum) < lo || sum > p.WallNS {
						t.Errorf("self-time sum %d outside [%.0f, %d] of wall", sum, lo, p.WallNS)
					}
				}
			})
		}
	}
}

func treeContains(n *hyracks.ProfileNode, prefix string) bool {
	if n == nil {
		return false
	}
	if len(n.Name) >= len(prefix) && n.Name[:len(prefix)] == prefix {
		return true
	}
	for _, c := range n.Children {
		if treeContains(c, prefix) {
			return true
		}
	}
	return false
}
