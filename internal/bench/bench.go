// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation section (§5). Each experiment
// builds its workload with the dataset generator, runs the engine (and the
// comparison systems) at a laptop scale that preserves the paper's
// proportions, and prints the same rows/series the paper reports.
//
// Scaling: the paper's datasets range from 100 MB to 803 GB on a 9-node
// cluster. The default Settings shrink sizes so the full suite runs in
// seconds; Settings.Factor scales them back up. EXPERIMENTS.md records the
// paper-reported values next to measured ones. Shape fidelity (who wins,
// rough factors, crossovers) is the goal — absolute times are hardware-
// dependent (see DESIGN.md §4).
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/gen"
	"vxq/internal/hyracks"
	"vxq/internal/runtime"
)

// The paper's evaluation queries (§5.2, Listings 7-11).
const (
	QueryQ0 = `
for $r in collection("/sensors")("root")()("results")()
let $datetime := dateTime(data($r("date")))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

	QueryQ0b = `
for $r in collection("/sensors")("root")()("results")()("date")
let $datetime := dateTime(data($r))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

	QueryQ1 = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))`

	QueryQ1b = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count(for $i in $r return $i("station"))`

	QueryQ2 = `
avg(
  for $r_min in collection("/sensors")("root")()("results")()
  for $r_max in collection("/sensors")("root")()("results")()
  where $r_min("station") eq $r_max("station")
    and $r_min("date") eq $r_max("date")
    and $r_min("dataType") eq "TMIN"
    and $r_max("dataType") eq "TMAX"
  return $r_max("value") - $r_min("value")
) div 10`
)

// Queries maps the paper's query names to their text, in evaluation order.
var Queries = []struct{ Name, Text string }{
	{"Q0", QueryQ0},
	{"Q0b", QueryQ0b},
	{"Q1", QueryQ1},
	{"Q1b", QueryQ1b},
	{"Q2", QueryQ2},
}

// Settings scales the experiment workloads.
type Settings struct {
	// Factor multiplies the default dataset sizes (1.0 = quick defaults).
	Factor float64
}

func (s Settings) factor() float64 {
	if s.Factor <= 0 {
		return 1
	}
	return s.Factor
}

// files computes a scaled file count, at least 1.
func (s Settings) files(base int) int {
	n := int(float64(base) * s.factor())
	if n < 1 {
		n = 1
	}
	return n
}

// Table is one generated result table/series, mirroring a paper table or
// one panel of a paper figure.
type Table struct {
	Title  string
	Paper  string // what the paper reports for this table/figure
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the short name used by -run and by the bench targets
	// (fig13 ... fig25, tab1 ... tab4).
	ID string
	// Paper identifies the table/figure in the paper.
	Paper string
	// Title describes what the experiment shows.
	Title string
	// Run executes the experiment.
	Run func(s Settings) ([]*Table, error)
}

// registry of experiments, populated by the experiment files' init
// functions.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every experiment in declaration order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared workload helpers -------------------------------------------------

// sensorSource generates an in-memory sensor collection.
func sensorSource(cfg gen.Config) (runtime.Source, int64, error) {
	docs, total, err := cfg.InMemory()
	if err != nil {
		return nil, 0, err
	}
	return &runtime.MemSource{
		Collections: map[string]map[string][]byte{"/sensors": docs},
	}, total, nil
}

// defaultDataset is the harness's base workload shape.
func defaultDataset(s Settings) gen.Config {
	cfg := gen.Default()
	cfg.Files = s.files(12)
	cfg.RecordsPerFile = 24
	cfg.MeasurementsPerArray = 30
	return cfg
}

// ablationDataset is the (smaller) workload for the rule-ablation
// experiments: without the rules the engine intentionally materializes and
// copies whole sequences (that is the point of Figs. 13-16), so the
// unoptimized runs are orders of magnitude slower and the dataset must stay
// small for the harness to finish quickly.
func ablationDataset(s Settings) gen.Config {
	cfg := gen.Default()
	cfg.Files = s.files(6)
	cfg.RecordsPerFile = 8
	cfg.MeasurementsPerArray = 30
	return cfg
}

// measured runs a compiled job with the staged executor and returns the
// result plus the wall-clock time of the run.
func measured(job *hyracks.Job, src runtime.Source) (*hyracks.Result, time.Duration, error) {
	env := &hyracks.Env{Source: src, Accountant: frame.NewAccountant(0)}
	start := time.Now()
	res, err := hyracks.RunStaged(job, env)
	elapsed := time.Since(start)
	if err != nil {
		return nil, 0, err
	}
	return res, elapsed, nil
}

// runQuery compiles and times one query execution.
func runQuery(query string, rules core.RuleConfig, partitions int, src runtime.Source) (*hyracks.Result, time.Duration, error) {
	c, err := core.CompileQuery(query, core.Options{Rules: rules, Partitions: partitions})
	if err != nil {
		return nil, 0, err
	}
	return measured(c.Job, src)
}

// ms formats a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// ratio formats a/b.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// mb formats bytes as MB with 2 decimals.
func mb(n int64) string { return fmt.Sprintf("%.2f", float64(n)/(1<<20)) }
