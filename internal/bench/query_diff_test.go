package bench

import (
	"bytes"
	"testing"

	"vxq/internal/core"
	"vxq/internal/hyracks"
	"vxq/internal/item"
)

// TestQueriesLazyVsEagerByteIdentical runs every paper query (Q0, Q0b, Q1,
// Q1b, Q2) through the full compiler and engine in the default lazy encoded
// mode and in the eager reference mode, and requires byte-identical results
// under the canonical encoding.
func TestQueriesLazyVsEagerByteIdentical(t *testing.T) {
	cfg := defaultDataset(Settings{})
	src, _, err := sensorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries {
		for _, parts := range []int{1, 3} {
			c, err := core.CompileQuery(q.Text, core.Options{Rules: core.AllRules(), Partitions: parts})
			if err != nil {
				t.Fatalf("%s: CompileQuery: %v", q.Name, err)
			}
			eager, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src, EagerReference: true})
			if err != nil {
				t.Fatalf("%s (parts=%d): eager: %v", q.Name, parts, err)
			}
			lazy, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src})
			if err != nil {
				t.Fatalf("%s (parts=%d): lazy: %v", q.Name, parts, err)
			}
			eager.SortRows()
			lazy.SortRows()
			if len(eager.Rows) != len(lazy.Rows) {
				t.Fatalf("%s (parts=%d): eager %d rows, lazy %d rows", q.Name, parts, len(eager.Rows), len(lazy.Rows))
			}
			if len(eager.Rows) == 0 {
				t.Fatalf("%s (parts=%d): no rows — workload too small to differentiate", q.Name, parts)
			}
			for i := range eager.Rows {
				if len(eager.Rows[i]) != len(lazy.Rows[i]) {
					t.Fatalf("%s (parts=%d): row %d arity mismatch", q.Name, parts, i)
				}
				for j := range eager.Rows[i] {
					eb := item.EncodeSeq(nil, eager.Rows[i][j])
					lb := item.EncodeSeq(nil, lazy.Rows[i][j])
					if !bytes.Equal(eb, lb) {
						t.Fatalf("%s (parts=%d): row %d field %d not byte-identical: eager %s, lazy %s",
							q.Name, parts, i, j, item.JSONSeq(eager.Rows[i][j]), item.JSONSeq(lazy.Rows[i][j]))
					}
				}
			}
		}
	}
}
