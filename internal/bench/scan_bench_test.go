package bench

import (
	"os"
	goruntime "runtime"
	"testing"

	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// benchScanScale picks the workload size: quick by default; the acceptance
// scale (1x64 MiB + 31x2 MiB) with VXQ_SCAN_FULL=1.
func benchScanScale() ScanScale {
	if os.Getenv("VXQ_SCAN_FULL") != "" {
		return FullScanScale()
	}
	return QuickScanScale()
}

func benchScan(b *testing.B, src runtime.Source, total int64, scale ScanScale) {
	b.Helper()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := RunScanCount(src, 8, scale.MorselSize)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.TuplesProduced == 0 {
			b.Fatal("scan produced no tuples")
		}
	}
}

// BenchmarkScanSkewed scans one oversized file plus many small ones on 8
// partitions: the workload that static file striding serializes onto a
// single partition and the shared morsel queue balances.
func BenchmarkScanSkewed(b *testing.B) {
	scale := benchScanScale()
	src, total := SkewedScanSource(scale)
	benchScan(b, src, total, scale)
}

// BenchmarkScanUniform is the control: the same total bytes spread evenly.
// The acceptance criterion is skewed within 1.3x of this.
func BenchmarkScanUniform(b *testing.B) {
	scale := benchScanScale()
	src, total := UniformScanSource(scale)
	benchScan(b, src, total, scale)
}

// BenchmarkScanSelectProject measures the end-to-end select/project pipeline
// (scan -> select on dataType -> project) and reports total allocations per
// produced tuple. This number includes building the item tree for every
// parsed record — the cost of querying raw self-describing data — on top of
// the frame-path overhead isolated by BenchmarkFramePathProjectRaw.
func BenchmarkScanSelectProject(b *testing.B) {
	scale := QuickScanScale()
	src, total := UniformScanSource(scale)
	cond := runtime.CallEval{Fn: runtime.MustFunction("eq"), Args: []runtime.Evaluator{
		runtime.CallEval{Fn: runtime.MustFunction("value"), Args: []runtime.Evaluator{
			runtime.ColumnEval{Col: 0},
			runtime.ConstEval{Seq: item.Single(item.String("dataType"))},
		}},
		runtime.ConstEval{Seq: item.Single(item.String("TMIN"))},
	}}
	job := ScanCountJob(8)
	job.Fragments[0].Ops = append([]hyracks.OpSpec{&hyracks.SelectSpec{Cond: cond}}, job.Fragments[0].Ops...)
	b.SetBytes(total)
	b.ReportAllocs()
	var tuples int64
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := &hyracks.Env{Source: src, Accountant: frame.NewAccountant(0), MorselSize: scale.MorselSize}
		res, err := hyracks.RunPipelined(job, env)
		if err != nil {
			b.Fatal(err)
		}
		tuples += res.Stats.TuplesProduced
	}
	b.StopTimer()
	goruntime.ReadMemStats(&m1)
	if tuples > 0 {
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(tuples), "allocs/tuple")
	}
}

// poolSink recycles every received frame, standing in for a terminal that
// copies nothing (pure frame-path measurement).
type poolSink struct{ pool *frame.Pool }

func (s poolSink) Open() error                { return nil }
func (s poolSink) Push(fr *frame.Frame) error { s.pool.Put(fr); return nil }
func (s poolSink) Close() error               { return nil }

// BenchmarkFramePathProjectRaw isolates the dataflow frame path — pooled
// frame checkout, tuple append, raw project, recycle — from parsing and item
// materialization. This is the path the issue bounds at <= 1 alloc per
// tuple: with the frame pool and per-call scratch it allocates nothing in
// steady state.
func BenchmarkFramePathProjectRaw(b *testing.B) {
	acct := frame.NewAccountant(0)
	pool := frame.NewPool(frame.DefaultFrameSize, acct)
	ctx := &hyracks.TaskCtx{
		RT:   &runtime.Ctx{Accountant: acct, Stats: &runtime.Stats{}},
		Pool: pool,
	}
	chain := hyracks.BuildChain(ctx, []hyracks.OpSpec{&hyracks.ProjectSpec{Cols: []int{0}}}, poolSink{pool: pool})
	if err := chain.Open(); err != nil {
		b.Fatal(err)
	}
	// One pre-encoded two-field tuple, appended until the frame is full.
	f0 := item.EncodeSeq(nil, item.Single(item.String("2013-12-25T00:00")))
	f1 := item.EncodeSeq(nil, item.Single(item.Number(42)))
	tuple := [][]byte{f0, f1}
	perFrame := 0
	{
		probe := frame.New(frame.DefaultFrameSize)
		for probe.AppendTuple(tuple) && !probe.Oversize() {
			perFrame++
		}
	}
	b.ReportAllocs()
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := pool.Get()
		for t := 0; t < perFrame; t++ {
			fr.AppendTuple(tuple)
		}
		if err := chain.Push(fr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	goruntime.ReadMemStats(&m1)
	if err := chain.Close(); err != nil {
		b.Fatal(err)
	}
	tuples := float64(b.N) * float64(perFrame)
	if tuples > 0 {
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/tuples, "allocs/tuple")
	}
}

// BenchmarkScanQ1GroupBy runs the paper's Q1 (filter + group-by + count)
// end to end over the uniform workload: the group-by hot path with frame
// recycling through the hash exchange.
func BenchmarkScanQ1GroupBy(b *testing.B) {
	scale := QuickScanScale()
	src, total := UniformScanSource(scale)
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := runQuery(QueryQ1, core.AllRules(), 4, src)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no groups")
		}
	}
}
