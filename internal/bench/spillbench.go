package bench

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// The spill benchmark measures the out-of-core operators: each blocking
// query shape (group-by, self-join, order-by) runs once fully in memory and
// once under a per-operator budget several times smaller than the input, and
// the harness enforces the acceptance gates — identical results, actual
// spilling, an accountant that balances to zero, a high-water no worse than
// the in-memory run, and an empty spill directory afterwards.

// SpillBenchBudget is the per-operator memory budget of the budgeted runs.
const SpillBenchBudget int64 = 16 << 10

// QuerySortAll orders every measurement — the external-merge-sort shape (the
// paper's queries have no order-by, so the spill benchmark supplies one).
const QuerySortAll = `
for $r in collection("/sensors")("root")()("results")()
order by $r("station"), $r("value") descending
return $r("value")`

// SpillBenchRun is one measured execution.
type SpillBenchRun struct {
	Seconds         float64 `json:"seconds"`
	Rows            int64   `json:"rows"`
	PeakMemory      int64   `json:"peak_memory"`
	SpilledBytes    int64   `json:"spilled_bytes"`
	SpillPartitions int64   `json:"spill_partitions"`
	SpillWaves      int64   `json:"spill_waves"`
}

// SpillBenchResult pairs the in-memory and budgeted runs of one query.
type SpillBenchResult struct {
	Query       string        `json:"query"`
	BudgetBytes int64         `json:"budget_bytes"`
	InputBytes  int64         `json:"input_bytes"`
	OverBudget  float64       `json:"over_budget"` // input / budget
	InMemory    SpillBenchRun `json:"in_memory"`
	Spilled     SpillBenchRun `json:"spilled"`
	Slowdown    float64       `json:"slowdown"` // spilled / in-memory seconds
}

// RunSpillBench runs the three blocking shapes over the scaled default
// dataset and returns one result per query. Any violated gate is an error.
func RunSpillBench(s Settings) ([]SpillBenchResult, error) {
	cfg := defaultDataset(s)
	src, total, err := sensorSource(cfg)
	if err != nil {
		return nil, err
	}
	if total < 4*SpillBenchBudget {
		return nil, fmt.Errorf("spillbench: input %d bytes is under 4x the %d budget", total, SpillBenchBudget)
	}
	queries := []struct{ name, text string }{
		{"Q1-groupby", QueryQ1},
		{"Q2-join", QueryQ2},
		{"sort", QuerySortAll},
	}
	var results []SpillBenchResult
	for _, q := range queries {
		c, err := core.CompileQuery(q.text, core.Options{Rules: core.AllRules(), Partitions: 2})
		if err != nil {
			return nil, fmt.Errorf("spillbench %s: %w", q.name, err)
		}
		mem, memRows, err := spillBenchRun(q.name+"/memory", c.Job, src, 0, "")
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "vxq-spill-bench-")
		if err != nil {
			return nil, err
		}
		sp, spRows, err := spillBenchRun(q.name+"/spilled", c.Job, src, SpillBenchBudget, dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		ents, derr := os.ReadDir(dir)
		os.RemoveAll(dir)
		if derr != nil {
			return nil, derr
		}
		if len(ents) != 0 {
			return nil, fmt.Errorf("spillbench %s: %d spill files left behind", q.name, len(ents))
		}
		if err := sameSortedRows(q.name, memRows, spRows); err != nil {
			return nil, err
		}
		if sp.SpilledBytes <= 0 {
			return nil, fmt.Errorf("spillbench %s: budgeted run spilled 0 bytes (input %d, budget %d)",
				q.name, total, SpillBenchBudget)
		}
		if sp.PeakMemory > mem.PeakMemory {
			return nil, fmt.Errorf("spillbench %s: budgeted high-water %d exceeds in-memory %d",
				q.name, sp.PeakMemory, mem.PeakMemory)
		}
		results = append(results, SpillBenchResult{
			Query:       q.name,
			BudgetBytes: SpillBenchBudget,
			InputBytes:  total,
			OverBudget:  float64(total) / float64(SpillBenchBudget),
			InMemory:    mem,
			Spilled:     sp,
			Slowdown:    sp.Seconds / mem.Seconds,
		})
	}
	return results, nil
}

// spillBenchRun executes one staged run and checks the accountant balances.
func spillBenchRun(name string, job *hyracks.Job, src runtime.Source, budget int64, dir string) (SpillBenchRun, [][]item.Sequence, error) {
	acct := frame.NewAccountant(0)
	env := &hyracks.Env{Source: src, Accountant: acct,
		OpMemoryBudget: budget, SpillDir: dir, SpillPartitions: 8}
	start := time.Now()
	res, err := hyracks.RunStaged(job, env)
	elapsed := time.Since(start)
	if err != nil {
		return SpillBenchRun{}, nil, fmt.Errorf("spillbench %s: %w", name, err)
	}
	if cur := acct.Current(); cur != 0 {
		return SpillBenchRun{}, nil, fmt.Errorf("spillbench %s: accountant balance %d after clean end, want 0", name, cur)
	}
	res.SortRows()
	return SpillBenchRun{
		Seconds:         elapsed.Seconds(),
		Rows:            int64(len(res.Rows)),
		PeakMemory:      res.PeakMemory,
		SpilledBytes:    res.Stats.SpilledBytes,
		SpillPartitions: res.Stats.SpillPartitions,
		SpillWaves:      res.Stats.SpillWaves,
	}, res.Rows, nil
}

// sameSortedRows requires two canonically sorted row sets to be
// byte-identical under the canonical item encoding.
func sameSortedRows(name string, a, b [][]item.Sequence) error {
	if len(a) != len(b) {
		return fmt.Errorf("spillbench %s: %d in-memory rows vs %d spilled", name, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("spillbench %s: row %d arity differs", name, i)
		}
		for j := range a[i] {
			if !bytes.Equal(item.EncodeSeq(nil, a[i][j]), item.EncodeSeq(nil, b[i][j])) {
				return fmt.Errorf("spillbench %s: row %d field %d not byte-identical: %s vs %s",
					name, i, j, item.JSONSeq(a[i][j]), item.JSONSeq(b[i][j]))
			}
		}
	}
	return nil
}
