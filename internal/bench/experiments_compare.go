package bench

import (
	"errors"
	"fmt"
	"time"

	"vxq/internal/baselines/asterixsim"
	"vxq/internal/baselines/mongosim"
	"vxq/internal/baselines/sparksim"
	"vxq/internal/core"
	"vxq/internal/gen"
	"vxq/internal/runtime"
)

// Comparison-system experiments (§5.3): Fig. 18 and Table 1 sweep the
// measurements-per-array document layout against MongoDB and AsterixDB;
// Fig. 19 and Tables 2-3 compare with SparkSQL; Table 4 reports MongoDB's
// load times at cluster scale.

func init() {
	register(Experiment{
		ID:    "fig18a",
		Paper: "Figure 18a",
		Title: "Q0b query time vs measurements/array: VXQuery flat, MongoDB best at 30, AsterixDB best at 1",
		Run:   runFig18a,
	})
	register(Experiment{
		ID:    "fig18b",
		Paper: "Figure 18b",
		Title: "Space consumption vs measurements/array: MongoDB compression degrades as documents shrink",
		Run:   runFig18b,
	})
	register(Experiment{
		ID:    "tab1",
		Paper: "Table 1",
		Title: "Loading time for MongoDB and AsterixDB(load) vs measurements/array",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "fig19",
		Paper: "Figure 19",
		Title: "SparkSQL vs VXQuery Q1 execution time over growing data sizes",
		Run:   runFig19,
	})
	register(Experiment{
		ID:    "tab2",
		Paper: "Table 2",
		Title: "SparkSQL loading time per data size",
		Run:   runTab2,
	})
	register(Experiment{
		ID:    "tab3",
		Paper: "Table 3",
		Title: "Memory: SparkSQL loads everything, VXQuery keeps only query-relevant data",
		Run:   runTab3,
	})
	register(Experiment{
		ID:    "tab4",
		Paper: "Table 4",
		Title: "MongoDB loading time for the two cluster dataset sizes",
		Run:   runTab4,
	})
}

// measurementsSweep is the x-axis of Fig. 18 / Table 1.
var measurementsSweep = []int{30, 22, 15, 7, 1}

// sweepConfig builds a dataset with a given measurements/array, holding the
// total measurement count (and so the logical data volume) constant.
func sweepConfig(s Settings, measPerArray int) gen.Config {
	cfg := gen.Default()
	cfg.MeasurementsPerArray = measPerArray
	// Keep total measurements constant: fewer per array -> more records.
	totalMeas := s.files(8) * 12 * 30
	cfg.Files = s.files(8)
	cfg.RecordsPerFile = totalMeas / cfg.Files / measPerArray
	if cfg.RecordsPerFile < 1 {
		cfg.RecordsPerFile = 1
	}
	return cfg
}

func runFig18a(s Settings) ([]*Table, error) {
	t := &Table{
		Title: "Q0b execution time vs measurements per results array",
		Paper: "Figure 18a (88 GB): VXQuery independent of layout; MongoDB best at 30/array (compression); AsterixDB best at 1/array; AsterixDB(load) beats AsterixDB",
		Header: []string{"meas/array", "VXQuery (ms)", "MongoDB (ms)",
			"AsterixDB (ms)", "AsterixDB(load) (ms)"},
	}
	for _, m := range measurementsSweep {
		src, _, err := sensorSource(sweepConfig(s, m))
		if err != nil {
			return nil, err
		}
		// VXQuery: raw files, no load.
		_, vt, err := runQuery(QueryQ0b, core.AllRules(), 1, src)
		if err != nil {
			return nil, err
		}
		// MongoDB: query over the loaded store.
		st, err := mongosim.Load(src, "/sensors")
		if err != nil {
			return nil, err
		}
		mStart := time.Now()
		if _, err := st.SelectDates(dec25Pred); err != nil {
			return nil, err
		}
		mt := time.Since(mStart)
		// AsterixDB external.
		ext := asterixsim.New(asterixsim.External, src)
		aStart := time.Now()
		if _, err := ext.Run(QueryQ0b, 1); err != nil {
			return nil, err
		}
		at := time.Since(aStart)
		// AsterixDB(load): query time only (load cost in Table 1).
		ld := asterixsim.New(asterixsim.LoadFirst, src)
		if err := ld.Load("/sensors"); err != nil {
			return nil, err
		}
		lStart := time.Now()
		if _, err := ld.Run(QueryQ0b, 1); err != nil {
			return nil, err
		}
		lt := time.Since(lStart)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), ms(vt), ms(mt), ms(at), ms(lt),
		})
	}
	return []*Table{t}, nil
}

func runFig18b(s Settings) ([]*Table, error) {
	t := &Table{
		Title: "Space consumption vs measurements per results array",
		Paper: "Figure 18b: MongoDB space grows as documents shrink (less compression); VXQuery and AsterixDB flat (no compression)",
		Header: []string{"meas/array", "raw JSON (MB)", "MongoDB (MB)",
			"AsterixDB(load) (MB)", "VXQuery (MB, raw files)"},
	}
	for _, m := range measurementsSweep {
		src, rawBytes, err := sensorSource(sweepConfig(s, m))
		if err != nil {
			return nil, err
		}
		st, err := mongosim.Load(src, "/sensors")
		if err != nil {
			return nil, err
		}
		ld := asterixsim.New(asterixsim.LoadFirst, src)
		if err := ld.Load("/sensors"); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), mb(rawBytes), mb(st.StoredBytes),
			mb(ld.StorageBytes), mb(rawBytes),
		})
	}
	return []*Table{t}, nil
}

func runTab1(s Settings) ([]*Table, error) {
	t := &Table{
		Title: "Loading time vs measurements per results array",
		Paper: "Table 1: MongoDB 9000s@30 -> 19876s@1 (less compression, more docs); AsterixDB(load) ~24000s, roughly flat",
		Header: []string{"meas/array", "MongoDB load (ms)", "AsterixDB(load) load (ms)",
			"Mongo docs", "ADM docs"},
	}
	for _, m := range measurementsSweep {
		src, _, err := sensorSource(sweepConfig(s, m))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		st, err := mongosim.Load(src, "/sensors")
		if err != nil {
			return nil, err
		}
		mLoad := time.Since(start)
		ld := asterixsim.New(asterixsim.LoadFirst, src)
		start = time.Now()
		if err := ld.Load("/sensors"); err != nil {
			return nil, err
		}
		aLoad := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), ms(mLoad), ms(aLoad),
			fmt.Sprintf("%d", st.DocumentsLoaded), fmt.Sprintf("%d", ld.DocumentsLoaded),
		})
	}
	return []*Table{t}, nil
}

// sparkSizes are the Fig. 19 / Table 2 data sizes, as multiples of the base
// dataset (the paper uses 400 MB, 800 MB, 1000 MB).
var sparkSizes = []struct {
	name string
	mult float64
}{
	{"400", 1.0},
	{"800", 2.0},
	{"1000", 2.5},
}

func sparkDataset(s Settings, mult float64) gen.Config {
	cfg := defaultDataset(s)
	cfg.Files = int(float64(cfg.Files) * mult)
	if cfg.Files < 1 {
		cfg.Files = 1
	}
	return cfg
}

func runFig19(s Settings) ([]*Table, error) {
	t := &Table{
		Title: "SparkSQL vs VXQuery, query Q1, growing data sizes",
		Paper: "Figure 19: Spark faster on small inputs (data already loaded), VXQuery wins as size grows; VXQuery bar includes all work, Spark bar is query-only",
		Header: []string{"size (paper MB)", "VXQuery total (ms)", "Spark query-only (ms)",
			"Spark load+query (ms)"},
	}
	for _, sz := range sparkSizes {
		src, _, err := sensorSource(sparkDataset(s, sz.mult))
		if err != nil {
			return nil, err
		}
		_, vt, err := runQuery(QueryQ1, core.AllRules(), 1, src)
		if err != nil {
			return nil, err
		}
		loadStart := time.Now()
		table, err := sparksim.Load(src, "/sensors", sparksim.Config{})
		if err != nil {
			return nil, err
		}
		loadTime := time.Since(loadStart)
		qStart := time.Now()
		table.CountStationsByDate("TMIN")
		qTime := time.Since(qStart)
		t.Rows = append(t.Rows, []string{
			sz.name, ms(vt), ms(qTime), ms(loadTime + qTime),
		})
	}
	return []*Table{t}, nil
}

func runTab2(s Settings) ([]*Table, error) {
	t := &Table{
		Title:  "SparkSQL loading time per data size",
		Paper:  "Table 2: 6.3s@400MB, 15s@800MB, 40s@1000MB — superlinear growth",
		Header: []string{"size (paper MB)", "raw bytes (MB)", "Spark load (ms)"},
	}
	for _, sz := range sparkSizes {
		src, raw, err := sensorSource(sparkDataset(s, sz.mult))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := sparksim.Load(src, "/sensors", sparksim.Config{}); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{sz.name, mb(raw), ms(time.Since(start))})
	}
	return []*Table{t}, nil
}

func runTab3(s Settings) ([]*Table, error) {
	t := &Table{
		Title: "Memory consumption: SparkSQL vs VXQuery",
		Paper: "Table 3: Spark 5650-7953 MB for 400-1000 MB inputs; VXQuery ~1700 MB flat; Spark cannot load past the node's RAM",
		Header: []string{"size (paper MB)", "Spark memory (MB)", "VXQuery peak (MB)",
			"Spark OOM at limit?"},
	}
	for _, sz := range sparkSizes {
		cfg := sparkDataset(s, sz.mult)
		src, raw, err := sensorSource(cfg)
		if err != nil {
			return nil, err
		}
		table, err := sparksim.Load(src, "/sensors", sparksim.Config{})
		if err != nil {
			return nil, err
		}
		c, err := core.CompileQuery(QueryQ1, core.Options{Rules: core.AllRules(), Partitions: 1})
		if err != nil {
			return nil, err
		}
		res, _, err := measured(c.Job, src)
		if err != nil {
			return nil, err
		}
		// Demonstrate the OOM path with a budget below the needed memory.
		_, oomErr := sparksim.Load(src, "/sensors", sparksim.Config{
			MemoryLimitBytes: table.MemoryBytes / 2,
		})
		oom := "no"
		if errors.Is(oomErr, sparksim.ErrOutOfMemory) {
			oom = "yes (budget = half of needed)"
		}
		_ = raw
		t.Rows = append(t.Rows, []string{
			sz.name, mb(table.MemoryBytes), mb(res.PeakMemory), oom,
		})
	}
	return []*Table{t}, nil
}

func runTab4(s Settings) ([]*Table, error) {
	t := &Table{
		Title:  "MongoDB loading time at the cluster dataset sizes",
		Paper:  "Table 4: 9000s for 88 GB, 81000s for 803 GB — a huge overhead for real-time use",
		Header: []string{"dataset (paper GB)", "raw bytes (MB)", "MongoDB load (ms)"},
	}
	for _, sz := range []struct {
		name string
		mult int
	}{{"88", 1}, {"803", 9}} {
		cfg := defaultDataset(s)
		cfg.Files = s.files(8) * sz.mult
		src, raw, err := sensorSource(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := mongosim.Load(src, "/sensors"); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{sz.name, mb(raw), ms(time.Since(start))})
	}
	return []*Table{t}, nil
}

var _ runtime.Source = (*runtime.MemSource)(nil)
