package bench

import (
	goruntime "runtime"
	"testing"
	"time"

	"vxq/internal/jsonparse"
)

// BenchmarkParallelBuilder runs the speculative parallel builder at
// GOMAXPROCS workers over the workload — compare against
// BenchmarkBitmapBuilder (the fused sequential phase 1) and the sequential
// row MeasureParallelBuilder emits.
func BenchmarkParallelBuilder(b *testing.B) {
	data, _ := ParseBenchStream(16 << 20)
	pi := jsonparse.ParallelIndexer{}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sp := pi.Splits(data, ParallelBuilderSplitGrain); len(sp) == 0 {
			b.Fatal("no splits")
		}
	}
}

// TestParallelIndexBounds pins the speculative parallel builder's committed
// claims on a 64 MiB workload:
//
//   - correctness is unconditional: every worker count produces splits
//     byte-identical to the sequential BoundaryScanner (MeasureParallelBuilder
//     fails otherwise);
//   - scaling is keyed off the host's core count, so the gate is meaningful
//     on CI runners of any width: >= 3x at 8 workers on >= 8 cores, >= 2x at
//     4 workers on >= 4 cores, >= 1.3x at 2 workers on >= 2 cores;
//   - on any host, including single-core ones, the speculation overhead is
//     bounded: the best parallel configuration is never worse than 1.6x the
//     sequential pass (one extra pass over ~25% of the input plus stitching).
func TestParallelIndexBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping parallel index bounds in -short")
	}
	data, _ := ParseBenchStream(64 << 20)
	results, err := MeasureParallelBuilder(data, []int{1, 2, 4, 8}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	byWorkers := map[int]ParallelBuilderResult{}
	bestSpeedup := 0.0
	for _, r := range results {
		byWorkers[r.Workers] = r
		t.Logf("workers=%d: %.0f MB/s (%.2fx sequential, %d splits)", r.Workers, r.MBPerSec, r.Speedup, r.Splits)
		if r.Workers > 0 && r.Speedup > bestSpeedup {
			bestSpeedup = r.Speedup
		}
	}
	ncpu := goruntime.NumCPU()
	check := func(workers int, want float64) {
		r, ok := byWorkers[workers]
		if !ok {
			t.Fatalf("no measurement at %d workers", workers)
		}
		if r.Speedup < want {
			t.Errorf("%d workers on %d cores: speedup %.2fx, want >= %.1fx", workers, ncpu, r.Speedup, want)
		}
	}
	switch {
	case ncpu >= 8:
		check(8, 3.0)
		check(4, 2.0)
	case ncpu >= 4:
		check(4, 2.0)
	case ncpu >= 2:
		check(2, 1.3)
	}
	if bestSpeedup < 1/1.6 {
		t.Errorf("best parallel configuration is %.2fx sequential; overhead bound is 1.6x slowdown", bestSpeedup)
	}
}
