package bench

import "testing"

// TestSpillBenchSmoke runs the out-of-core benchmark at a reduced scale; the
// harness itself enforces the acceptance gates (byte-identical results,
// spilling actually happened, accountant zero, bounded high-water, empty
// spill directory), so the test only checks the harness completes and covers
// all three blocking shapes. This is the test behind `make bench-spill`'s CI
// smoke leg.
func TestSpillBenchSmoke(t *testing.T) {
	results, err := RunSpillBench(Settings{Factor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.OverBudget < 4 {
			t.Errorf("%s: input only %.1fx over budget, want >= 4x", r.Query, r.OverBudget)
		}
		if r.Spilled.SpilledBytes <= 0 {
			t.Errorf("%s: no bytes spilled", r.Query)
		}
		if r.InMemory.Rows != r.Spilled.Rows {
			t.Errorf("%s: row counts diverge: %d vs %d", r.Query, r.InMemory.Rows, r.Spilled.Rows)
		}
	}
}
