package bench

import (
	goruntime "runtime"
	"testing"
	"time"

	"vxq/internal/frame"
	"vxq/internal/hyracks"
)

// The query-kernel microbenchmarks: the binary tuple kernel (encoded-key
// hashing, lazy field decode, CountStepper counts) against the eager
// reference on GROUP-BY, hash shuffle, and hash join. Run with -benchmem;
// allocs per input tuple is reported as a custom metric.

func benchQueryShape(b *testing.B, shape string, eager bool) {
	b.Helper()
	const tuples = 100_000
	frames := hyracks.BenchFrames(QueryBenchRows(tuples), 0)
	var build []*frame.Frame
	if shape == "join" {
		build = hyracks.BenchFrames(QueryBenchRows(QueryBenchKeys), 0)
	}
	if _, err := RunQueryBenchPass(shape, frames, build, eager); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunQueryBenchPass(shape, frames, build, eager); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	goruntime.ReadMemStats(&m1)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(int64(b.N)*tuples), "allocs/tuple")
	b.ReportMetric(float64(int64(b.N)*tuples)/b.Elapsed().Seconds()/1e6, "mtuples/s")
}

func BenchmarkGroupByEncoded(b *testing.B)     { benchQueryShape(b, "groupby", false) }
func BenchmarkGroupByEager(b *testing.B)       { benchQueryShape(b, "groupby", true) }
func BenchmarkHashShuffleEncoded(b *testing.B) { benchQueryShape(b, "shuffle", false) }
func BenchmarkHashShuffleEager(b *testing.B)   { benchQueryShape(b, "shuffle", true) }
func BenchmarkHashJoinEncoded(b *testing.B)    { benchQueryShape(b, "join", false) }
func BenchmarkHashJoinEager(b *testing.B)      { benchQueryShape(b, "join", true) }

// TestQueryKernelBounds pins the acceptance bounds of the binary tuple
// kernel: the encoded GROUP-BY stays under 0.1 allocations per input tuple,
// and the encoded GROUP-BY and hash shuffle beat the eager reference by at
// least 2x. Join speedup is reported but not pinned (output dominates it).
func TestQueryKernelBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping kernel bounds in -short")
	}
	const tuples = 100_000
	const minDur = 300 * time.Millisecond
	run := func(shape, mode string) QueryBenchResult {
		t.Helper()
		r, err := MeasureQueryBench(shape, mode, tuples, minDur)
		if err != nil {
			t.Fatalf("%s/%s: %v", shape, mode, err)
		}
		t.Logf("%s/%s: %.2f Mtuples/s, %.4f allocs/tuple, output %d",
			shape, mode, r.MTuplesPerSec, r.AllocsPerTuple, r.Output)
		return r
	}
	for _, shape := range []string{"groupby", "shuffle"} {
		enc := run(shape, "encoded")
		eag := run(shape, "eager")
		if enc.Output != eag.Output {
			t.Errorf("%s: encoded output %d != eager output %d", shape, enc.Output, eag.Output)
		}
		speedup := eag.Seconds / enc.Seconds
		if speedup < 2 {
			t.Errorf("%s: encoded speedup %.2fx over eager, want >= 2x (encoded %.4fs, eager %.4fs)",
				shape, speedup, enc.Seconds, eag.Seconds)
		}
		if shape == "groupby" && enc.AllocsPerTuple > 0.1 {
			t.Errorf("groupby encoded allocs/tuple = %.4f, want <= 0.1", enc.AllocsPerTuple)
		}
	}
	encJ := run("join", "encoded")
	eagJ := run("join", "eager")
	if encJ.Output != eagJ.Output {
		t.Errorf("join: encoded output %d != eager output %d", encJ.Output, eagJ.Output)
	}
	if encJ.Seconds >= eagJ.Seconds {
		t.Logf("join: encoded not faster (%.4fs vs %.4fs) — informational only", encJ.Seconds, eagJ.Seconds)
	}
}
