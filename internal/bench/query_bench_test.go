package bench

import (
	goruntime "runtime"
	"testing"
	"time"

	"vxq/internal/frame"
	"vxq/internal/hyracks"
)

// The query-kernel microbenchmarks: the binary tuple kernel (encoded-key
// hashing, lazy field decode, CountStepper counts) against the eager
// reference on GROUP-BY, hash shuffle, and hash join. Run with -benchmem;
// allocs per input tuple is reported as a custom metric.

func benchQueryShape(b *testing.B, shape, mode string) {
	b.Helper()
	const tuples = 100_000
	frames := hyracks.BenchFrames(QueryBenchRows(tuples), 0)
	var build []*frame.Frame
	if shape == "join" {
		build = hyracks.BenchFrames(QueryBenchRows(QueryBenchKeys), 0)
	}
	if _, err := RunQueryBenchPass(shape, mode, frames, build); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunQueryBenchPass(shape, mode, frames, build); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	goruntime.ReadMemStats(&m1)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(int64(b.N)*tuples), "allocs/tuple")
	b.ReportMetric(float64(int64(b.N)*tuples)/b.Elapsed().Seconds()/1e6, "mtuples/s")
}

func BenchmarkGroupByEncoded(b *testing.B)      { benchQueryShape(b, "groupby", "encoded") }
func BenchmarkGroupByEager(b *testing.B)        { benchQueryShape(b, "groupby", "eager") }
func BenchmarkGroupByProfiled(b *testing.B)     { benchQueryShape(b, "groupby", "profiled") }
func BenchmarkHashShuffleEncoded(b *testing.B)  { benchQueryShape(b, "shuffle", "encoded") }
func BenchmarkHashShuffleEager(b *testing.B)    { benchQueryShape(b, "shuffle", "eager") }
func BenchmarkHashShuffleProfiled(b *testing.B) { benchQueryShape(b, "shuffle", "profiled") }
func BenchmarkHashJoinEncoded(b *testing.B)     { benchQueryShape(b, "join", "encoded") }
func BenchmarkHashJoinEager(b *testing.B)       { benchQueryShape(b, "join", "eager") }
func BenchmarkHashJoinProfiled(b *testing.B)    { benchQueryShape(b, "join", "profiled") }

// TestQueryKernelBounds pins the acceptance bounds of the binary tuple
// kernel: the encoded GROUP-BY stays under 0.1 allocations per input tuple,
// and the encoded GROUP-BY and hash shuffle beat the eager reference by at
// least 2x. Join speedup is reported but not pinned (output dominates it).
func TestQueryKernelBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping kernel bounds in -short")
	}
	const tuples = 100_000
	const minDur = 300 * time.Millisecond
	run := func(shape, mode string) QueryBenchResult {
		t.Helper()
		r, err := MeasureQueryBench(shape, mode, tuples, minDur)
		if err != nil {
			t.Fatalf("%s/%s: %v", shape, mode, err)
		}
		t.Logf("%s/%s: %.2f Mtuples/s, %.4f allocs/tuple, output %d",
			shape, mode, r.MTuplesPerSec, r.AllocsPerTuple, r.Output)
		return r
	}
	for _, shape := range []string{"groupby", "shuffle"} {
		enc := run(shape, "encoded")
		eag := run(shape, "eager")
		if enc.Output != eag.Output {
			t.Errorf("%s: encoded output %d != eager output %d", shape, enc.Output, eag.Output)
		}
		speedup := eag.Seconds / enc.Seconds
		if speedup < 2 {
			t.Errorf("%s: encoded speedup %.2fx over eager, want >= 2x (encoded %.4fs, eager %.4fs)",
				shape, speedup, enc.Seconds, eag.Seconds)
		}
		if shape == "groupby" && enc.AllocsPerTuple > 0.1 {
			t.Errorf("groupby encoded allocs/tuple = %.4f, want <= 0.1", enc.AllocsPerTuple)
		}
	}
	encJ := run("join", "encoded")
	eagJ := run("join", "eager")
	if encJ.Output != eagJ.Output {
		t.Errorf("join: encoded output %d != eager output %d", encJ.Output, eagJ.Output)
	}
	if encJ.Seconds >= eagJ.Seconds {
		t.Logf("join: encoded not faster (%.4fs vs %.4fs) — informational only", encJ.Seconds, eagJ.Seconds)
	}
}

// TestProfileOverheadBound pins the profiling tax: the kernel with the
// boundary wrappers installed must stay within 3% of the unprofiled kernel
// on the query-kernel shapes. Passes of the two modes are interleaved (the
// pair order alternating each iteration) and each side takes its best pass,
// so drift of the machine (frequency scaling, co-tenants, the rest of the
// test suite running in sibling processes) cancels instead of biasing one
// mode. A shape over the bound is re-measured with a longer window before
// failing — transient contention must not fail CI, persistent overhead must.
func TestProfileOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping profile overhead bound in -short")
	}
	const tuples = 100_000
	const minDur = 600 * time.Millisecond
	const bound = 1.03
	for _, shape := range []string{"groupby", "shuffle", "join"} {
		frames := hyracks.BenchFrames(QueryBenchRows(tuples), 0)
		var build []*frame.Frame
		if shape == "join" {
			build = hyracks.BenchFrames(QueryBenchRows(QueryBenchKeys), 0)
		}
		// Warm-up both modes; outputs must agree.
		baseOut, err := RunQueryBenchPass(shape, "encoded", frames, build)
		if err != nil {
			t.Fatalf("%s/encoded: %v", shape, err)
		}
		profOut, err := RunQueryBenchPass(shape, "profiled", frames, build)
		if err != nil {
			t.Fatalf("%s/profiled: %v", shape, err)
		}
		if baseOut != profOut {
			t.Fatalf("%s: profiled output %d != unprofiled output %d", shape, profOut, baseOut)
		}
		measure := func(dur time.Duration) float64 {
			best := map[string]float64{}
			passes := 0
			for deadline := time.Now().Add(dur); time.Now().Before(deadline); passes++ {
				modes := []string{"encoded", "profiled"}
				if passes%2 == 1 {
					modes[0], modes[1] = modes[1], modes[0]
				}
				for _, mode := range modes {
					start := time.Now()
					if _, err := RunQueryBenchPass(shape, mode, frames, build); err != nil {
						t.Fatalf("%s/%s: %v", shape, mode, err)
					}
					sec := time.Since(start).Seconds()
					if best[mode] == 0 || sec < best[mode] {
						best[mode] = sec
					}
				}
			}
			ratio := best["profiled"] / best["encoded"]
			t.Logf("%s: profiled/unprofiled = %.4f (%.4fs vs %.4fs over %d interleaved passes)",
				shape, ratio, best["profiled"], best["encoded"], passes)
			return ratio
		}
		ratio := measure(minDur)
		for attempt := 0; ratio > bound && attempt < 2; attempt++ {
			t.Logf("%s: over the bound, re-measuring with a longer window", shape)
			if r := measure(2 * minDur); r < ratio {
				ratio = r
			}
		}
		if ratio > bound {
			t.Errorf("%s: profiling overhead %.1f%% exceeds the %.0f%% bound",
				shape, 100*(ratio-1), 100*(bound-1))
		}
	}
}
