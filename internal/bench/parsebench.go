package bench

import (
	"bytes"
	"fmt"
	goruntime "runtime"
	"time"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
)

// The parse-kernel benchmarks measure the on-demand scan kernel (structural
// raw-skip, zero-alloc token views, lazy numbers) against the token-level
// reference skip on the two shapes the issue's acceptance criteria name:
//
//   - project1: project one small field out of ~1 KiB records, so nearly
//     every byte is skipped — the DATASCAN-with-projection hot path;
//   - skiprecord: a path that matches nothing, so the whole record is
//     skipped — the pure skip throughput ceiling.

// ParseBenchRecordTarget is the approximate record size of the parse-kernel
// workload (the issue's "~1 KiB records").
const ParseBenchRecordTarget = 1024

// parseBenchRecord renders one synthetic sensor-ish record of roughly 1 KiB:
// a handful of small leading fields, a long readings array, a padded note
// string with escapes, and a nested metadata object. The projected field
// ("dataType") sits among the leading fields; everything else is skip fodder.
func parseBenchRecord(i int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"id":"rec-%08d","dataType":"TMIN","station":"GSW%06d","value":%d.%d`,
		i, 100000+i%900000, -40+i%80, i%10)
	b.WriteString(`,"readings":[`)
	for j := 0; j < 60; j++ {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d.%02d", (i+j)%100, j)
	}
	b.WriteString(`],"meta":{"source":"noaa\/ghcnd","quality":"Q","flags":[null,true,false],"revision":3}`)
	fmt.Fprintf(&b, `,"note":"record %d \"quoted\" padding %s"}`, i,
		bytes.Repeat([]byte("abcdefgh"), 57))
	return b.Bytes()
}

// ParseBenchStream builds the newline-delimited workload: records ~1 KiB
// each, totalling roughly totalBytes.
func ParseBenchStream(totalBytes int) (data []byte, records int) {
	var b bytes.Buffer
	for i := 0; b.Len() < totalBytes; i++ {
		b.Write(parseBenchRecord(i))
		b.WriteByte('\n')
		records++
	}
	return b.Bytes(), records
}

// ParseBenchPath returns the projection path of a parse-kernel shape.
func ParseBenchPath(shape string) (jsonparse.Path, error) {
	switch shape {
	case "project1":
		return jsonparse.Path{jsonparse.KeyStep("dataType")}, nil
	case "skiprecord":
		return jsonparse.Path{jsonparse.KeyStep("nosuchfield")}, nil
	default:
		return nil, fmt.Errorf("unknown parse bench shape %q", shape)
	}
}

// ParseBenchMode resolves a benchmark mode name to the lexer's skip mode:
// "index" is the SWAR structural-index kernel, "bytes" the byte-class scan,
// "reference" the token-level oracle, and "kernel" the automatic production
// choice (the structural index for in-memory buffers).
func ParseBenchMode(mode string) (jsonparse.SkipMode, error) {
	switch mode {
	case "kernel":
		return jsonparse.SkipAuto, nil
	case "index":
		return jsonparse.SkipIndexed, nil
	case "bytes":
		return jsonparse.SkipRawBytes, nil
	case "reference":
		return jsonparse.SkipTokens, nil
	default:
		return 0, fmt.Errorf("unknown parse bench mode %q", mode)
	}
}

// ScanParseBench runs one pass of the shape's projected scan over data in the
// given skip mode, returning the number of emitted items.
func ScanParseBench(data []byte, path jsonparse.Path, mode jsonparse.SkipMode) (int, error) {
	l := jsonparse.NewLexer(data)
	l.SetSkipMode(mode)
	emitted := 0
	_, err := jsonparse.ScanValues(l, path, -1, func(item.Item) error {
		emitted++
		return nil
	})
	return emitted, err
}

// ParseBenchResult is one measured configuration of the parse-kernel
// benchmark, serialized into BENCH_parse.json.
type ParseBenchResult struct {
	Shape           string  `json:"shape"`
	Mode            string  `json:"mode"` // "index", "bytes", "reference" or "kernel" (auto)
	Records         int64   `json:"records"`
	Bytes           int64   `json:"bytes"`
	Seconds         float64 `json:"seconds"`
	MBPerSec        float64 `json:"mb_per_sec"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	Emitted         int64   `json:"emitted"`
}

// MeasureParseBench times repeated passes of one shape/mode over data until
// minDuration has elapsed (at least one pass), reporting the best-pass
// throughput and the exact allocations per record.
func MeasureParseBench(shape, mode string, data []byte, records int, minDuration time.Duration) (ParseBenchResult, error) {
	path, err := ParseBenchPath(shape)
	if err != nil {
		return ParseBenchResult{}, err
	}
	skip, err := ParseBenchMode(mode)
	if err != nil {
		return ParseBenchResult{}, err
	}
	// Warm-up pass (page in the buffer, build the intern table's steady state
	// equivalent — each pass uses a fresh lexer, like a fresh morsel).
	if _, err := ScanParseBench(data, path, skip); err != nil {
		return ParseBenchResult{}, err
	}
	var (
		passes   int64
		emitted  int64
		best     float64
		m0, m1   goruntime.MemStats
		deadline = time.Now().Add(minDuration)
	)
	goruntime.ReadMemStats(&m0)
	for {
		start := time.Now()
		e, err := ScanParseBench(data, path, skip)
		sec := time.Since(start).Seconds()
		if err != nil {
			return ParseBenchResult{}, err
		}
		passes++
		emitted += int64(e)
		if best == 0 || sec < best {
			best = sec
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	goruntime.ReadMemStats(&m1)
	totalRecords := passes * int64(records)
	return ParseBenchResult{
		Shape:           shape,
		Mode:            mode,
		Records:         int64(records),
		Bytes:           int64(len(data)),
		Seconds:         best,
		MBPerSec:        float64(len(data)) / (1 << 20) / best,
		RecordsPerSec:   float64(records) / best,
		AllocsPerRecord: float64(m1.Mallocs-m0.Mallocs) / float64(totalRecords),
		Emitted:         emitted / passes,
	}, nil
}

// BitmapBuilderResult is the standalone phase-1 measurement: IndexBlock run
// over every 64-byte block of the workload with carried state, no phase-2
// consumer at all — the raw ceiling of the structural-index pass.
type BitmapBuilderResult struct {
	Bytes          int64   `json:"bytes"`
	Seconds        float64 `json:"seconds"`
	MBPerSec       float64 `json:"mb_per_sec"`
	GBPerSec       float64 `json:"gb_per_sec"`
	AllocsPerChunk float64 `json:"allocs_per_chunk"` // per 4 KiB chunk of input
}

// MeasureBitmapBuilder times repeated full-buffer passes of the phase-1
// bitmap builder until minDuration has elapsed, reporting best-pass
// throughput and allocations per 4 KiB chunk (the streaming refill unit —
// the kernel itself must not allocate at all).
func MeasureBitmapBuilder(data []byte, minDuration time.Duration) BitmapBuilderResult {
	blocks := len(data) / 64
	data = data[:blocks*64]
	var sink uint64
	pass := func() {
		var st jsonparse.StructState
		for off := 0; off < len(data); off += 64 {
			m := jsonparse.IndexBlock(data[off:off+64], &st)
			sink ^= m.Structural ^ m.InString ^ m.Newline
		}
	}
	pass() // warm-up
	var (
		passes   int64
		best     float64
		m0, m1   goruntime.MemStats
		deadline = time.Now().Add(minDuration)
	)
	goruntime.ReadMemStats(&m0)
	for {
		start := time.Now()
		pass()
		sec := time.Since(start).Seconds()
		passes++
		if best == 0 || sec < best {
			best = sec
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	goruntime.ReadMemStats(&m1)
	if sink == 0xdeadbeef {
		fmt.Println(sink) // defeat dead-code elimination; never taken in practice
	}
	chunks := passes * int64(len(data)) / 4096
	res := BitmapBuilderResult{
		Bytes:   int64(len(data)),
		Seconds: best,
	}
	res.MBPerSec = float64(len(data)) / (1 << 20) / best
	res.GBPerSec = float64(len(data)) / (1 << 30) / best
	if chunks > 0 {
		res.AllocsPerChunk = float64(m1.Mallocs-m0.Mallocs) / float64(chunks)
	}
	return res
}
