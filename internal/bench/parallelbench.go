package bench

import (
	"fmt"
	"time"

	"vxq/internal/jsonparse"
)

// ParallelBuilderSplitGrain is the record-start sampling granularity of the
// parallel-builder benchmark — the zone-map build's production grain.
const ParallelBuilderSplitGrain int64 = 4 << 10

// ParallelBuilderResult is one measured worker count of the speculative
// parallel structural-index builder (jsonparse.ParallelIndexer.Splits),
// serialized into BENCH_parse.json. Speedup is against the sequential
// BoundaryScanner baseline over the same buffer — both sides run the full
// phase-1 classification per block, so the ratio isolates what speculation
// and stitching cost or return.
type ParallelBuilderResult struct {
	Workers  int     `json:"workers"`
	Bytes    int64   `json:"bytes"`
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
	Speedup  float64 `json:"speedup"`
	Splits   int64   `json:"splits"`
}

// MeasureParallelBuilder times the sequential boundary scanner and the
// parallel builder at each requested worker count over data, best-of-passes
// until minDuration per configuration. Every parallel pass's splits are
// verified byte-identical to the sequential baseline's — a mismatch is an
// error, not a slow result. The sequential baseline is returned as a
// ParallelBuilderResult with Workers == 0 and Speedup == 1.
func MeasureParallelBuilder(data []byte, workers []int, minDuration time.Duration) ([]ParallelBuilderResult, error) {
	bestOf := func(pass func() []int64) (float64, []int64) {
		splits := pass() // warm-up
		var (
			best     float64
			deadline = time.Now().Add(minDuration)
		)
		for {
			start := time.Now()
			splits = pass()
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
			if !time.Now().Before(deadline) {
				break
			}
		}
		return best, splits
	}

	seqSec, seqSplits := bestOf(func() []int64 {
		bs := jsonparse.NewBoundaryScanner(ParallelBuilderSplitGrain)
		bs.Write(data)
		bs.Close()
		return bs.Splits()
	})
	mb := float64(len(data)) / (1 << 20)
	results := []ParallelBuilderResult{{
		Workers:  0,
		Bytes:    int64(len(data)),
		Seconds:  seqSec,
		MBPerSec: mb / seqSec,
		Speedup:  1,
		Splits:   int64(len(seqSplits)),
	}}
	for _, w := range workers {
		pi := jsonparse.ParallelIndexer{Workers: w}
		sec, splits := bestOf(func() []int64 {
			return pi.Splits(data, ParallelBuilderSplitGrain)
		})
		if len(splits) != len(seqSplits) {
			return nil, fmt.Errorf("parallel builder (%d workers): %d splits, sequential %d",
				w, len(splits), len(seqSplits))
		}
		for i := range splits {
			if splits[i] != seqSplits[i] {
				return nil, fmt.Errorf("parallel builder (%d workers): split[%d] = %d, sequential %d",
					w, i, splits[i], seqSplits[i])
			}
		}
		results = append(results, ParallelBuilderResult{
			Workers:  w,
			Bytes:    int64(len(data)),
			Seconds:  sec,
			MBPerSec: mb / sec,
			Speedup:  seqSec / sec,
			Splits:   int64(len(splits)),
		})
	}
	return results, nil
}
