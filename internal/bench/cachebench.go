// Cache benchmark: cold versus warm latency of repeated queries over an
// on-disk collection, exercising all three persistence layers — structural
// index sidecars, the compiled-plan cache, and the result cache. The driver
// is parameterized over an injected engine: the root vxq package's own
// benchmarks import this package, so this package cannot import vxq.
// cmd/benchscan supplies the vxq-backed engine and writes BENCH_cache.json.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vxq/internal/gen"
	"vxq/internal/runtime"
)

// CacheRunStats is what one query execution reports back to the cache
// benchmark: item count plus the cache and pruning counters the gates check.
type CacheRunStats struct {
	Items           int
	PlanHit         bool
	ResultHit       bool
	FilesSkipped    int64
	MorselsSkipped  int64
	ColdIndexBuilds int64
}

// CacheSidecarStats counts an engine's sidecar traffic.
type CacheSidecarStats struct {
	Loads, Misses, Writes int64
}

// CacheEngine abstracts the caching engine under test.
type CacheEngine interface {
	Query(q string) (CacheRunStats, error)
	BuildIndex(collection, pathExpr string) error
	SidecarStats() CacheSidecarStats
}

// CacheEngineFactory opens a fresh engine over the dataset directory,
// mounted as the "/sensors" collection. Each call must return an engine
// with empty in-memory caches — a fresh process in miniature, so the only
// warmth that can carry over between engines is what sidecars persist.
// resultCache toggles the engine's result cache: the scan-repeat phase runs
// without it so every repeat demonstrates a plan-cache hit plus a
// sidecar-backed scan, not a memoized answer.
type CacheEngineFactory func(dir string, resultCache bool) (CacheEngine, error)

// CacheBenchConfig sizes the cache benchmark.
type CacheBenchConfig struct {
	// Dir is the dataset directory ("" = a temp dir, removed on return).
	// Sidecars are written next to the data files inside it.
	Dir string
	// Files / RecordsPerFile / MeasurementsPerArray size the generated
	// collection. Files must be >= 2 so file-level pruning has something
	// to skip; each file must exceed the engine's morsel size so scans
	// split and the cold boundary pass (and its sidecar write) triggers.
	Files, RecordsPerFile, MeasurementsPerArray int
	// Repeats is the number of timed hot executions per query (result
	// cache on), spread over Concurrency goroutines sharing one engine.
	Repeats, Concurrency int
	// ScanRepeats is the number of timed warm-scan executions per query
	// (result cache off: plan-cache hit + sidecar-backed scan each time).
	ScanRepeats int
}

func (c CacheBenchConfig) withDefaults() CacheBenchConfig {
	if c.Files <= 0 {
		c.Files = 4
	}
	if c.RecordsPerFile <= 0 {
		c.RecordsPerFile = 192
	}
	if c.MeasurementsPerArray <= 0 {
		c.MeasurementsPerArray = 30
	}
	if c.Repeats <= 0 {
		c.Repeats = 32
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.ScanRepeats <= 0 {
		c.ScanRepeats = 8
	}
	return c
}

// genConfig is the dataset shape: newline-split records (so byte-range
// morsels exist), one year per file (so a year-bounded predicate skips
// whole files), dates clustered within each file (so a month-bounded
// predicate skips morsels inside the surviving file).
func (c CacheBenchConfig) genConfig() gen.Config {
	return gen.Config{
		Seed:                 1,
		Files:                c.Files,
		RecordsPerFile:       c.RecordsPerFile,
		MeasurementsPerArray: c.MeasurementsPerArray,
		Stations:             50,
		YearMin:              2000,
		YearMax:              2000 + c.Files - 1,
		PartitionByYear:      true,
		SplitRecords:         true,
		ClusterDates:         true,
	}
}

// CacheQueryReport is the cold/warm comparison of one query.
type CacheQueryReport struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	Items int    `json:"items"`

	// Cold: fresh engine, no sidecars on disk. The scan pays the full
	// structural-index pass and leaves sidecars behind.
	ColdSeconds     float64 `json:"cold_seconds"`
	ColdIndexBuilds int64   `json:"cold_index_builds"`
	SidecarWrites   int64   `json:"sidecar_writes"`

	// Warm scans: a fresh engine (empty caches, result cache off),
	// sidecars present. After one priming execution, ScanRepeats timed
	// executions — each a plan-cache hit plus a sidecar-backed scan that
	// rebuilds nothing. WarmScanSeconds is the per-execution average.
	WarmScanSeconds         float64 `json:"warm_scan_seconds"`
	WarmScanRepeats         int     `json:"warm_scan_repeats"`
	WarmScanPlanHits        int64   `json:"warm_scan_plan_hits"`
	WarmScanColdIndexBuilds int64   `json:"warm_scan_cold_index_builds"`
	WarmScanSidecarLoads    int64   `json:"warm_scan_sidecar_loads"`
	WarmScanSpeedup         float64 `json:"warm_scan_speedup"`

	// Hot repeats: another fresh engine with the result cache on. After
	// one priming execution, Repeats timed executions under Concurrency
	// goroutines — each a result-cache hit. WarmSeconds is the
	// per-execution average.
	WarmSeconds         float64 `json:"warm_seconds"`
	WarmRepeats         int     `json:"warm_repeats"`
	WarmResultHits      int64   `json:"warm_result_hits"`
	WarmColdIndexBuilds int64   `json:"warm_cold_index_builds"`

	// Speedup is ColdSeconds / WarmSeconds.
	Speedup float64 `json:"speedup"`
}

// CacheSelectiveReport is the morsel-skip demonstration: a date-bounded
// selection over a date-indexed collection, run on a fresh engine whose
// only warmth is the sidecars a previous engine's BuildIndex left behind.
type CacheSelectiveReport struct {
	Query           string  `json:"query"`
	Items           int     `json:"items"`
	Seconds         float64 `json:"seconds"`
	FilesSkipped    int64   `json:"files_skipped"`
	MorselsSkipped  int64   `json:"morsels_skipped"`
	ColdIndexBuilds int64   `json:"cold_index_builds"`
	SidecarLoads    int64   `json:"sidecar_loads"`
}

// CacheDatasetInfo describes the generated collection.
type CacheDatasetInfo struct {
	Files          int   `json:"files"`
	RecordsPerFile int   `json:"records_per_file"`
	Measurements   int   `json:"measurements"`
	Bytes          int64 `json:"bytes"`
}

// CacheBenchReport is the BENCH_cache.json schema.
type CacheBenchReport struct {
	Dataset     CacheDatasetInfo     `json:"dataset"`
	Repeats     int                  `json:"repeats"`
	Concurrency int                  `json:"concurrency"`
	Queries     []CacheQueryReport   `json:"queries"`
	Selective   CacheSelectiveReport `json:"selective"`
}

// Check enforces the acceptance gates on a finished report. It is shared by
// cmd/benchscan (so a regressing artifact fails the build) and the smoke
// test.
func (r *CacheBenchReport) Check() error {
	if len(r.Queries) == 0 {
		return fmt.Errorf("cachebench: no query results")
	}
	for _, q := range r.Queries {
		switch {
		case q.ColdIndexBuilds == 0:
			return fmt.Errorf("cachebench %s: cold scan ran no structural-index pass", q.Name)
		case q.SidecarWrites == 0:
			return fmt.Errorf("cachebench %s: cold scan wrote no sidecars", q.Name)
		case q.WarmScanColdIndexBuilds != 0:
			return fmt.Errorf("cachebench %s: warm scans rebuilt %d structural indexes, want 0",
				q.Name, q.WarmScanColdIndexBuilds)
		case q.WarmScanSidecarLoads == 0:
			return fmt.Errorf("cachebench %s: warm scans loaded no sidecars", q.Name)
		case q.WarmScanPlanHits != int64(q.WarmScanRepeats):
			return fmt.Errorf("cachebench %s: %d/%d warm scans hit the plan cache",
				q.Name, q.WarmScanPlanHits, q.WarmScanRepeats)
		case q.WarmColdIndexBuilds != 0:
			return fmt.Errorf("cachebench %s: hot repeats rebuilt %d structural indexes, want 0",
				q.Name, q.WarmColdIndexBuilds)
		case q.WarmResultHits != int64(q.WarmRepeats):
			return fmt.Errorf("cachebench %s: %d/%d hot repeats hit the result cache",
				q.Name, q.WarmResultHits, q.WarmRepeats)
		case q.Speedup < 3:
			return fmt.Errorf("cachebench %s: warm repeats only %.2fx faster than cold, want >= 3x",
				q.Name, q.Speedup)
		}
	}
	s := r.Selective
	switch {
	case s.Items == 0:
		return fmt.Errorf("cachebench selective: query returned nothing; bad setup")
	case s.FilesSkipped == 0:
		return fmt.Errorf("cachebench selective: no files skipped")
	case s.MorselsSkipped == 0:
		return fmt.Errorf("cachebench selective: no morsels skipped")
	case s.ColdIndexBuilds != 0:
		return fmt.Errorf("cachebench selective: %d structural indexes rebuilt on a sidecar-warm scan, want 0",
			s.ColdIndexBuilds)
	case s.SidecarLoads == 0:
		return fmt.Errorf("cachebench selective: no sidecars loaded")
	}
	return nil
}

// RunCacheBench generates the dataset and measures cold versus warm latency
// of Q0–Q2 plus the selective morsel-skip case. It does not apply the
// acceptance gates — call Check on the report for that.
func RunCacheBench(cfg CacheBenchConfig, newEngine CacheEngineFactory) (*CacheBenchReport, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "vxq-cachebench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	gcfg := cfg.genConfig()
	bytes, err := gcfg.WriteDir(dir)
	if err != nil {
		return nil, err
	}
	rep := &CacheBenchReport{
		Dataset: CacheDatasetInfo{
			Files:          gcfg.Files,
			RecordsPerFile: gcfg.RecordsPerFile,
			Measurements:   gcfg.Measurements(),
			Bytes:          bytes,
		},
		Repeats:     cfg.Repeats,
		Concurrency: cfg.Concurrency,
	}
	for _, q := range []struct{ name, query string }{
		{"Q0", QueryQ0}, {"Q1", QueryQ1}, {"Q2", QueryQ2},
	} {
		qr, err := runCacheQuery(dir, q.name, q.query, cfg, newEngine)
		if err != nil {
			return nil, fmt.Errorf("cachebench %s: %w", q.name, err)
		}
		rep.Queries = append(rep.Queries, qr)
	}
	sel, err := runCacheSelective(dir, gcfg, newEngine)
	if err != nil {
		return nil, fmt.Errorf("cachebench selective: %w", err)
	}
	rep.Selective = sel
	return rep, nil
}

// removeSidecars deletes every sidecar in the dataset directory, resetting
// the on-disk warmth before a cold run.
func removeSidecars(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+runtime.SidecarSuffix))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return err
		}
	}
	return nil
}

func runCacheQuery(dir, name, query string, cfg CacheBenchConfig, newEngine CacheEngineFactory) (CacheQueryReport, error) {
	r := CacheQueryReport{Name: name, Query: query, WarmScanRepeats: cfg.ScanRepeats, WarmRepeats: cfg.Repeats}
	if err := removeSidecars(dir); err != nil {
		return r, err
	}

	// Cold: fresh engine, bare directory. The scan pays the structural
	// index pass and leaves the sidecars the warm phases live off.
	cold, err := newEngine(dir, true)
	if err != nil {
		return r, err
	}
	start := time.Now()
	st, err := cold.Query(query)
	if err != nil {
		return r, err
	}
	r.ColdSeconds = time.Since(start).Seconds()
	r.Items = st.Items
	r.ColdIndexBuilds = st.ColdIndexBuilds
	r.SidecarWrites = cold.SidecarStats().Writes
	if st.PlanHit || st.ResultHit {
		return r, fmt.Errorf("cold run hit a cache (plan=%v result=%v): factory reuses state", st.PlanHit, st.ResultHit)
	}

	// Warm scans: fresh engine with the result cache off, sidecars
	// present. One priming execution compiles the plan; every timed
	// execution then hits the plan cache and re-runs the sidecar-backed
	// scan, rebuilding nothing.
	scanEng, err := newEngine(dir, false)
	if err != nil {
		return r, err
	}
	st, err = scanEng.Query(query)
	if err != nil {
		return r, err
	}
	if st.Items != r.Items {
		return r, fmt.Errorf("warm scan returned %d items, cold returned %d", st.Items, r.Items)
	}
	if st.ColdIndexBuilds != 0 {
		return r, fmt.Errorf("priming warm scan rebuilt %d structural indexes", st.ColdIndexBuilds)
	}
	start = time.Now()
	for i := 0; i < cfg.ScanRepeats; i++ {
		st, err = scanEng.Query(query)
		if err != nil {
			return r, err
		}
		if st.PlanHit {
			r.WarmScanPlanHits++
		}
		r.WarmScanColdIndexBuilds += st.ColdIndexBuilds
	}
	r.WarmScanSeconds = time.Since(start).Seconds() / float64(cfg.ScanRepeats)
	r.WarmScanSidecarLoads = scanEng.SidecarStats().Loads
	if r.WarmScanSeconds > 0 {
		r.WarmScanSpeedup = r.ColdSeconds / r.WarmScanSeconds
	}

	// Hot repeats: fresh engine with the result cache on. One priming
	// execution stores the answer; Repeats timed executions under
	// Concurrency goroutines then serve it from the result cache.
	hot, err := newEngine(dir, true)
	if err != nil {
		return r, err
	}
	if st, err = hot.Query(query); err != nil {
		return r, err
	} else if st.Items != r.Items {
		return r, fmt.Errorf("hot priming run returned %d items, cold returned %d", st.Items, r.Items)
	}
	var (
		wg                 sync.WaitGroup
		issued             int64
		resultHits, builds int64
		errOnce            sync.Once
		firstErr           error
	)
	start = time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.AddInt64(&issued, 1) <= int64(cfg.Repeats) {
				st, err := hot.Query(query)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				if st.ResultHit {
					atomic.AddInt64(&resultHits, 1)
				}
				atomic.AddInt64(&builds, st.ColdIndexBuilds)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if firstErr != nil {
		return r, firstErr
	}
	r.WarmSeconds = wall / float64(cfg.Repeats)
	r.WarmResultHits = resultHits
	r.WarmColdIndexBuilds = builds
	if r.WarmSeconds > 0 {
		r.Speedup = r.ColdSeconds / r.WarmSeconds
	}
	return r, nil
}

// DatePathExpr is the indexed path of the selective case, in the engine's
// BuildIndex syntax.
const DatePathExpr = `("root")()("results")()("date")`

func runCacheSelective(dir string, gcfg gen.Config, newEngine CacheEngineFactory) (CacheSelectiveReport, error) {
	// One month of the last year: PartitionByYear pins the year per file
	// (every other file skips at file level) and ClusterDates packs June
	// into a narrow byte range of the surviving file (most of its morsels
	// skip at zone level).
	year := gcfg.YearMax
	lo := fmt.Sprintf("%04d-06-01", year)
	hi := fmt.Sprintf("%04d-07-01", year)
	query := fmt.Sprintf(`
for $d in collection("/sensors")("root")()("results")()("date")
where $d ge %q and $d lt %q
return $d`, lo, hi)
	r := CacheSelectiveReport{Query: query}

	// An index build on one engine persists splits and per-zone date stats
	// into the sidecars...
	builder, err := newEngine(dir, true)
	if err != nil {
		return r, err
	}
	if err := builder.BuildIndex("/sensors", DatePathExpr); err != nil {
		return r, err
	}
	if builder.SidecarStats().Writes == 0 {
		return r, fmt.Errorf("index build wrote no sidecars")
	}

	// ...and a fresh engine prunes from them alone.
	reader, err := newEngine(dir, true)
	if err != nil {
		return r, err
	}
	start := time.Now()
	st, err := reader.Query(query)
	if err != nil {
		return r, err
	}
	r.Seconds = time.Since(start).Seconds()
	r.Items = st.Items
	r.FilesSkipped = st.FilesSkipped
	r.MorselsSkipped = st.MorselsSkipped
	r.ColdIndexBuilds = st.ColdIndexBuilds
	r.SidecarLoads = reader.SidecarStats().Loads
	return r, nil
}
