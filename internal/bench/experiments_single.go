package bench

import (
	"fmt"
	"time"

	"vxq/internal/core"
)

// Single-node, one-core rule-ablation experiments (§5.3, Figs. 13-16).
// The paper progressively enables the rule categories on a 400 MB
// collection; the harness does the same at a scaled size.

func init() {
	register(Experiment{
		ID:    "fig13",
		Paper: "Figure 13",
		Title: "Execution time before and after the Path Expression Rules (all queries, 1 node, 1 core)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Paper: "Figure 14",
		Title: "Execution time before and after the Pipelining Rules (log scale in the paper)",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Paper: "Figure 15",
		Title: "Execution time before and after the Group-by Rules",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Paper: "Figure 16",
		Title: "Q1 execution time for growing collection sizes, before and after all rewrite rules",
		Run:   runFig16,
	})
}

// ruleSweep measures every query under two rule configurations.
func ruleSweep(s Settings, title, paper string, before, after core.RuleConfig, beforeName, afterName string) ([]*Table, error) {
	src, totalBytes, err := sensorSource(ablationDataset(s))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("%s (collection %s MB)", title, mb(totalBytes)),
		Paper:  paper,
		Header: []string{"query", beforeName + " (ms)", afterName + " (ms)", "speedup"},
	}
	for _, q := range Queries {
		tb, err := timeOf(2, func() (time.Duration, error) {
			_, d, err := runQuery(q.Text, before, 1, src)
			return d, err
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", q.Name, beforeName, err)
		}
		ta, err := timeOf(2, func() (time.Duration, error) {
			_, d, err := runQuery(q.Text, after, 1, src)
			return d, err
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", q.Name, afterName, err)
		}
		t.Rows = append(t.Rows, []string{q.Name, ms(tb), ms(ta), ratio(tb, ta)})
	}
	return []*Table{t}, nil
}

func runFig13(s Settings) ([]*Table, error) {
	return ruleSweep(s,
		"Before/after path expression rules", "all queries improve: large sequences of objects are avoided",
		core.RuleConfig{},
		core.RuleConfig{PathRules: true},
		"no rules", "path rules")
}

func runFig14(s Settings) ([]*Table, error) {
	return ruleSweep(s,
		"Before/after pipelining rules", "~2 orders of magnitude improvement; Q0b best (smallest DATASCAN argument)",
		core.RuleConfig{PathRules: true},
		core.RuleConfig{PathRules: true, PipeliningRules: true},
		"path only", "path+pipelining")
}

func runFig15(s Settings) ([]*Table, error) {
	return ruleSweep(s,
		"Before/after group-by rules", "Q1 and Q1b improve (count pushed into group-by); Q0/Q0b/Q2 unchanged",
		core.RuleConfig{PathRules: true, PipeliningRules: true},
		core.AllRules(),
		"path+pipelining", "all rules")
}

func runFig16(s Settings) ([]*Table, error) {
	t := &Table{
		Title:  "Q1 execution time vs collection size, before/after all rules",
		Paper:  "Figure 16: time scales proportionally with size; huge improvement from the rules at every size",
		Header: []string{"size (MB)", "no rules (ms)", "all rules (ms)", "speedup"},
	}
	base := ablationDataset(s)
	for _, mult := range []int{1, 2, 4} {
		cfg := base
		cfg.Files = base.Files * mult
		src, totalBytes, err := sensorSource(cfg)
		if err != nil {
			return nil, err
		}
		_, tb, err := runQuery(QueryQ1, core.RuleConfig{}, 1, src)
		if err != nil {
			return nil, err
		}
		_, ta, err := runQuery(QueryQ1, core.AllRules(), 1, src)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{mb(totalBytes), ms(tb), ms(ta), ratio(tb, ta)})
	}
	// Sanity note: proportional scaling of the optimized time.
	if len(t.Rows) == 3 {
		t.Paper += fmt.Sprintf(" | measured optimized-time growth x1->x4: %s vs %s ms",
			t.Rows[0][2], t.Rows[2][2])
	}
	return []*Table{t}, nil
}

// timeOf is a helper for experiments that re-run a measurement a few times
// and keep the fastest (reduces noise at small scales).
func timeOf(runs int, f func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < runs; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}
