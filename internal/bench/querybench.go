package bench

import (
	"fmt"
	goruntime "runtime"
	"time"

	"vxq/internal/frame"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// The query-kernel benchmarks measure the binary tuple kernel — encoded-key
// hashing and lazy field decode through GROUP-BY, the hash exchange, and the
// hash join — against the eager reference mode (every field decoded, keys
// hashed as sequences), on the workload the paper's aggregation queries
// imply: tuples of a date-string grouping key (~365 distinct values, one
// year of days) and a numeric measurement value.

// QueryBenchKeys is the number of distinct grouping keys of the query-kernel
// workload (one year of dates).
const QueryBenchKeys = 365

// QueryBenchRows builds the workload: n tuples of [date-string, number],
// cycling through QueryBenchKeys distinct dates.
func QueryBenchRows(n int) [][]item.Sequence {
	dates := make([]item.String, QueryBenchKeys)
	d := 0
	for m := 1; m <= 12 && d < QueryBenchKeys; m++ {
		for day := 1; day <= 31 && d < QueryBenchKeys; day++ {
			dates[d] = item.String(fmt.Sprintf("2003-%02d-%02dT00:00", m, day))
			d++
		}
	}
	rows := make([][]item.Sequence, n)
	for i := range rows {
		rows[i] = []item.Sequence{
			item.Single(dates[i%QueryBenchKeys]),
			item.Single(item.Number(float64(i%100) / 2)),
		}
	}
	return rows
}

// queryBenchGroupBy is the GROUP-BY spec shared by both modes: count per
// date key. The count aggregate exercises the CountStepper fast path, so the
// encoded mode never decodes a field at all.
func queryBenchGroupBy() *hyracks.GroupBySpec {
	return &hyracks.GroupBySpec{
		Keys: []runtime.Evaluator{runtime.ColumnEval{Col: 0}},
		Aggs: []hyracks.AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: runtime.ColumnEval{Col: 1}}},
		Desc: "bench",
	}
}

func queryBenchJoin() *hyracks.JoinSpec {
	return &hyracks.JoinSpec{
		BuildKeys: []runtime.Evaluator{runtime.ColumnEval{Col: 0}},
		ProbeKeys: []runtime.Evaluator{runtime.ColumnEval{Col: 0}},
		Desc:      "bench",
	}
}

// QueryBenchResult is one measured configuration of the query-kernel
// benchmark, serialized into BENCH_query.json.
type QueryBenchResult struct {
	Shape          string  `json:"shape"`
	Mode           string  `json:"mode"` // "encoded" or "eager"
	Tuples         int64   `json:"tuples"`
	Keys           int64   `json:"keys"`
	Seconds        float64 `json:"seconds"`
	MTuplesPerSec  float64 `json:"mtuples_per_sec"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	Output         int64   `json:"output"`
}

// RunQueryBenchPass runs one pass of a shape over prebuilt frames and
// returns the number of output tuples (groups, routed tuples, or joined
// tuples depending on the shape). Modes: "encoded" (the binary tuple
// kernel), "eager" (the decoded reference), and "profiled" (the kernel with
// the profiling boundary wrappers installed, for overhead measurement).
func RunQueryBenchPass(shape, mode string, frames, build []*frame.Frame) (int64, error) {
	eager := mode == "eager"
	profiled := mode == "profiled"
	switch shape {
	case "groupby":
		return hyracks.BenchGroupBy(queryBenchGroupBy(), frames, eager, profiled)
	case "shuffle":
		return hyracks.BenchHashShuffle([]runtime.Evaluator{runtime.ColumnEval{Col: 0}}, 8, frames, eager, profiled)
	case "join":
		return hyracks.BenchHashJoin(queryBenchJoin(), build, frames, eager, profiled)
	default:
		return 0, fmt.Errorf("unknown query bench shape %q", shape)
	}
}

// MeasureQueryBench times repeated passes of one shape/mode until
// minDuration has elapsed (at least one pass), reporting the best-pass
// throughput and the exact allocations per input tuple across all passes.
// tuples sizes the probe/input side; the join build side always holds one
// row per distinct key.
func MeasureQueryBench(shape, mode string, tuples int, minDuration time.Duration) (QueryBenchResult, error) {
	frames := hyracks.BenchFrames(QueryBenchRows(tuples), 0)
	var build []*frame.Frame
	if shape == "join" {
		build = hyracks.BenchFrames(QueryBenchRows(QueryBenchKeys), 0)
	}
	// Warm-up pass.
	out, err := RunQueryBenchPass(shape, mode, frames, build)
	if err != nil {
		return QueryBenchResult{}, err
	}
	var (
		passes   int64
		best     float64
		m0, m1   goruntime.MemStats
		deadline = time.Now().Add(minDuration)
	)
	goruntime.ReadMemStats(&m0)
	for {
		start := time.Now()
		o, err := RunQueryBenchPass(shape, mode, frames, build)
		sec := time.Since(start).Seconds()
		if err != nil {
			return QueryBenchResult{}, err
		}
		if o != out {
			return QueryBenchResult{}, fmt.Errorf("%s/%s: output changed between passes: %d then %d", shape, mode, out, o)
		}
		passes++
		if best == 0 || sec < best {
			best = sec
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	goruntime.ReadMemStats(&m1)
	return QueryBenchResult{
		Shape:          shape,
		Mode:           mode,
		Tuples:         int64(tuples),
		Keys:           QueryBenchKeys,
		Seconds:        best,
		MTuplesPerSec:  float64(tuples) / best / 1e6,
		AllocsPerTuple: float64(m1.Mallocs-m0.Mallocs) / float64(passes*int64(tuples)),
		Output:         out,
	}, nil
}
