package spill

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// readAll drains a run into ([tags], [records]) and closes the reader.
func readAll(t *testing.T, run *Run) ([]byte, [][][]byte) {
	t.Helper()
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var tags []byte
	var recs [][][]byte
	for {
		tag, fields, err := rd.Next()
		if err == io.EOF {
			return tags, recs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		// Fields alias the block buffer; copy before the next call.
		cp := make([][]byte, len(fields))
		for i, f := range fields {
			cp[i] = append([]byte(nil), f...)
		}
		tags = append(tags, tag)
		recs = append(recs, cp)
	}
}

// dirEntries lists the names currently in dir.
func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestWriteReadRoundTrip exercises the record format: mixed tags, varying
// arity including zero fields and empty fields, and payloads larger than the
// block size (so records span multiple blocks).
func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, MinBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 3*MinBlockSize) // larger than a block
	want := []struct {
		tag    byte
		fields [][]byte
	}{
		{0, [][]byte{[]byte("hello"), []byte("world")}},
		{1, [][]byte{{}}},  // one empty field
		{1, nil},           // zero fields
		{0, [][]byte{big}}, // oversized single field
		{7, [][]byte{[]byte("a"), {}, big, []byte("z")}},
	}
	for _, rec := range want {
		n, err := w.Write(rec.tag, rec.fields)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("Write reported %d bytes", n)
		}
	}
	if w.Tuples() != int64(len(want)) {
		t.Fatalf("Tuples = %d, want %d", w.Tuples(), len(want))
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Fatal("Finish returned nil run for non-empty writer")
	}
	if filepath.Ext(run.Path) != ".run" {
		t.Errorf("sealed run path %q does not end in .run", run.Path)
	}
	if run.Tuples != int64(len(want)) || run.Bytes <= 0 {
		t.Errorf("run stats: tuples %d bytes %d", run.Tuples, run.Bytes)
	}
	tags, recs := readAll(t, run)
	if len(recs) != len(want) {
		t.Fatalf("read %d records, want %d", len(recs), len(want))
	}
	for i, rec := range want {
		if tags[i] != rec.tag {
			t.Errorf("record %d tag = %d, want %d", i, tags[i], rec.tag)
		}
		if len(recs[i]) != len(rec.fields) {
			t.Fatalf("record %d arity = %d, want %d", i, len(recs[i]), len(rec.fields))
		}
		for j := range rec.fields {
			if !bytes.Equal(recs[i][j], rec.fields[j]) {
				t.Errorf("record %d field %d differs", i, j)
			}
		}
	}
	run.Remove()
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("files left after Remove: %v", names)
	}
}

// TestEmptyWriterFinish: a writer that never wrote returns (nil, nil) from
// Finish and leaves no file behind.
func TestEmptyWriterFinish(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		t.Fatalf("empty Finish returned run %+v", run)
	}
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("files left after empty Finish: %v", names)
	}
}

// TestAbortRemovesFile: Abort deletes the temp file, is idempotent, and is a
// no-op after Finish (the sealed run owns the file then).
func TestAbortRemovesFile(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(0, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("files left after Abort: %v", names)
	}
	if _, err := w.Write(0, nil); err == nil {
		t.Error("Write after Abort succeeded")
	}
	if _, err := w.Finish(); err == nil {
		t.Error("Finish after Abort succeeded")
	}

	// Abort after Finish must not delete the sealed run.
	w2, err := NewWriter(dir, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(0, [][]byte{[]byte("y")}); err != nil {
		t.Fatal(err)
	}
	run, err := w2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if _, err := os.Stat(run.Path); err != nil {
		t.Errorf("Abort after Finish removed the sealed run: %v", err)
	}
	run.Remove()
}

// TestCorruptionDetected flips one payload byte and expects the reader to
// refuse the block with a CRC error rather than surface bad records.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, MinBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := w.Write(0, [][]byte{[]byte(fmt.Sprintf("record-%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Remove()
	b, err := os.ReadFile(run.Path)
	if err != nil {
		t.Fatal(err)
	}
	b[blockHeaderSize+10] ^= 0x01 // inside the first block's payload
	if err := os.WriteFile(run.Path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	_, _, err = rd.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("corrupt block read returned %v, want CRC error", err)
	}
}

// TestTruncationDetected cuts the file mid-block; the reader must error, not
// EOF cleanly.
func TestTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, MinBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 64)
	for i := 0; i < 64; i++ {
		if _, err := w.Write(1, [][]byte{payload}); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Remove()
	// Cut inside a block (an offset 3 bytes past the midpoint cannot land on
	// a block boundary twice in a row; the +3 keeps it off the exact edge).
	if err := os.Truncate(run.Path, run.Bytes/2+3); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for {
		_, _, err := rd.Next()
		if err == io.EOF {
			t.Fatal("truncated run read to clean EOF")
		}
		if err != nil {
			return // detected, as required
		}
	}
}

// TestRemoveRunsSkipsNil: partition sets carry nil entries for empty
// partitions; RemoveRuns must tolerate them.
func TestRemoveRunsSkipsNil(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(0, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	RemoveRuns([]*Run{nil, run, nil})
	if names := dirEntries(t, dir); len(names) != 0 {
		t.Errorf("files left after RemoveRuns: %v", names)
	}
}
