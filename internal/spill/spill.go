// Package spill moves encoded tuple bytes between operators and temporary
// files, so blocking operators (hash group-by, hash join, sort) can go out of
// core when they hit their memory budget. Tuples are written and read back
// without ever decoding a field: a record is a tag byte plus length-prefixed
// raw field encodings, and records are packed into CRC-checked blocks.
//
// File hygiene matches the sidecar writer: a Writer writes to an
// os.CreateTemp file whose name matches *.tmp*, and Finish seals it by
// renaming to a .run name. A crash therefore leaves at most a *.tmp* file for
// the next cleanup sweep; Abort and Run.Remove delete eagerly on every error
// path, so a cleanly failing job leaves nothing at all.
package spill

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
)

// DefaultBlockSize is the write/read buffer of one spill stream. Operators
// shrink it when their budget is small relative to the partition fan-out.
const DefaultBlockSize = 256 * 1024

// MinBlockSize floors the configurable block size.
const MinBlockSize = 4 * 1024

// blockHeaderSize is the per-block on-disk overhead: a uint32 payload length
// followed by a uint32 CRC32 (IEEE) of the payload.
const blockHeaderSize = 8

// maxBlockLen bounds a decoded block header so a corrupt length cannot ask
// for an absurd allocation.
const maxBlockLen = 1 << 30

// Writer accumulates tagged tuple records into blocks and writes them to a
// temp file in dir. Finish seals the file into a Run; Abort removes it.
type Writer struct {
	f      *os.File
	path   string
	block  []byte
	limit  int
	tuples int64
	bytes  int64 // total bytes this writer produced, including buffered
	done   bool
}

// NewWriter creates a spill temp file in dir ("" = the OS temp directory).
func NewWriter(dir string, blockSize int) (*Writer, error) {
	if blockSize < MinBlockSize {
		blockSize = MinBlockSize
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("spill: %w", err)
		}
	}
	f, err := os.CreateTemp(dir, "vxq-spill-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Writer{f: f, path: f.Name(), limit: blockSize}, nil
}

// Write appends one record — a tag byte and the tuple's raw encoded fields —
// and reports the encoded record size in bytes.
func (w *Writer) Write(tag byte, fields [][]byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("spill: write after Finish/Abort")
	}
	before := len(w.block)
	w.block = append(w.block, tag)
	w.block = binary.AppendUvarint(w.block, uint64(len(fields)))
	for _, f := range fields {
		w.block = binary.AppendUvarint(w.block, uint64(len(f)))
	}
	for _, f := range fields {
		w.block = append(w.block, f...)
	}
	n := len(w.block) - before
	w.tuples++
	w.bytes += int64(n)
	if len(w.block) >= w.limit {
		if err := w.flushBlock(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Tuples reports how many records have been written.
func (w *Writer) Tuples() int64 { return w.tuples }

func (w *Writer) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	var hdr [blockHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(w.block)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(w.block))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	if _, err := w.f.Write(w.block); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	w.bytes += blockHeaderSize
	w.block = w.block[:0]
	return nil
}

// Finish flushes, closes, and seals the temp file under a .run name,
// returning the sealed Run. An empty writer (no records) removes its file and
// returns (nil, nil). On error the temp file is removed.
func (w *Writer) Finish() (*Run, error) {
	if w.done {
		return nil, fmt.Errorf("spill: Finish after Finish/Abort")
	}
	w.done = true
	err := w.flushBlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil || w.tuples == 0 {
		os.Remove(w.path)
		return nil, err
	}
	final := strings.TrimSuffix(w.path, ".tmp") + ".run"
	if err := os.Rename(w.path, final); err != nil {
		os.Remove(w.path)
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Run{Path: final, Tuples: w.tuples, Bytes: w.bytes}, nil
}

// Abort closes and removes the temp file. Safe to call more than once and
// after Finish (then a no-op: the sealed Run owns the file).
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.path)
}

// Run is one sealed spill file.
type Run struct {
	Path   string
	Tuples int64
	Bytes  int64
}

// Remove deletes the run's file.
func (r *Run) Remove() {
	if r != nil {
		os.Remove(r.Path)
	}
}

// RemoveRuns removes every non-nil run of a partition set.
func RemoveRuns(runs []*Run) {
	for _, r := range runs {
		r.Remove()
	}
}

// Open returns a sequential Reader over the run's records.
func (r *Run) Open() (*Reader, error) {
	f, err := os.Open(r.Path)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Reader{f: f, path: r.Path}, nil
}

// Reader iterates a run block by block, verifying each block's CRC before
// any of its records are surfaced.
type Reader struct {
	f      *os.File
	path   string
	buf    []byte
	off    int
	fields [][]byte
}

// Next returns the next record. The returned field slices alias the reader's
// block buffer and are valid only until the next call; callers that retain
// bytes must copy them. io.EOF signals a clean end of the run.
func (r *Reader) Next() (byte, [][]byte, error) {
	if r.off == len(r.buf) {
		if err := r.readBlock(); err != nil {
			return 0, nil, err
		}
	}
	buf := r.buf
	if r.off >= len(buf) {
		return 0, nil, r.corrupt("empty block")
	}
	tag := buf[r.off]
	r.off++
	nf, n := binary.Uvarint(buf[r.off:])
	if n <= 0 || nf > uint64(len(buf)) {
		return 0, nil, r.corrupt("bad field count")
	}
	r.off += n
	if cap(r.fields) < int(nf) {
		r.fields = make([][]byte, nf)
	}
	fields := r.fields[:nf]
	lens := make([]int, nf)
	for i := range lens {
		l, n := binary.Uvarint(buf[r.off:])
		if n <= 0 || l > uint64(len(buf)-r.off) {
			return 0, nil, r.corrupt("bad field length")
		}
		r.off += n
		lens[i] = int(l)
	}
	for i, l := range lens {
		if l > len(buf)-r.off {
			return 0, nil, r.corrupt("truncated field")
		}
		fields[i] = buf[r.off : r.off+l : r.off+l]
		r.off += l
	}
	return tag, fields, nil
}

func (r *Reader) readBlock() error {
	var hdr [blockHeaderSize]byte
	if _, err := io.ReadFull(r.f, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return r.corrupt("truncated block header")
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxBlockLen {
		return r.corrupt("bad block length")
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	r.buf = r.buf[:length]
	if _, err := io.ReadFull(r.f, r.buf); err != nil {
		return r.corrupt("truncated block")
	}
	if crc32.ChecksumIEEE(r.buf) != sum {
		return r.corrupt("block CRC mismatch")
	}
	r.off = 0
	return nil
}

func (r *Reader) corrupt(msg string) error {
	return fmt.Errorf("spill: %s: corrupt run %s", msg, r.path)
}

// Close releases the reader's file handle.
func (r *Reader) Close() error { return r.f.Close() }
