package algebricks

// Generic, language-agnostic rewrite rules provided by the Algebricks layer
// itself (§3.1: "built-in optimization rules that it provides"). The
// JSONiq-specific rule categories of §4 live in vxq/internal/core.

// RemoveUnusedAssign removes ASSIGN operators whose variable is referenced
// nowhere else in the plan (dead code introduced by other rewrites).
type RemoveUnusedAssign struct{}

// Name implements Rule.
func (RemoveUnusedAssign) Name() string { return "remove-unused-assign" }

// Apply implements Rule.
func (RemoveUnusedAssign) Apply(p *Plan, slot *Op) (bool, error) {
	a, ok := (*slot).(*Assign)
	if !ok {
		return false, nil
	}
	if varUsed(p.Root, a.V, a) {
		return false, nil
	}
	*slot = a.In
	return true, nil
}

// varUsed reports whether v is referenced by any expression of the plan,
// ignoring the expressions of skip (the operator being considered for
// removal).
func varUsed(root Op, v Var, skip Op) bool {
	found := false
	var visit func(op Op)
	visit = func(op Op) {
		if found {
			return
		}
		if op != skip {
			for _, e := range opExprs(op) {
				if UsesVar(e, v) {
					found = true
					return
				}
			}
			if dr, ok := op.(*DistributeResult); ok {
				for _, rv := range dr.Vs {
					if rv == v {
						found = true
						return
					}
				}
			}
			if pr, ok := op.(*Project); ok {
				for _, pv := range pr.Vs {
					if pv == v {
						found = true
						return
					}
				}
			}
		}
		if sp, ok := op.(*Subplan); ok {
			visit(sp.Nested)
		}
		for _, in := range op.InputSlots() {
			visit(*in)
		}
	}
	visit(root)
	return found
}

// opExprs returns the scalar expressions embedded in an operator.
func opExprs(op Op) []Expr {
	switch o := op.(type) {
	case *Assign:
		return []Expr{o.E}
	case *Select:
		return []Expr{o.Cond}
	case *Unnest:
		return []Expr{o.E}
	case *Aggregate:
		es := make([]Expr, len(o.Aggs))
		for i, a := range o.Aggs {
			es[i] = a.Arg
		}
		return es
	case *GroupBy:
		var es []Expr
		for _, k := range o.Keys {
			es = append(es, k.E)
		}
		for _, a := range o.Aggs {
			es = append(es, a.Arg)
		}
		return es
	case *Join:
		es := []Expr{o.Cond}
		es = append(es, o.LeftKeys...)
		es = append(es, o.RightKeys...)
		return es
	case *Sort:
		es := make([]Expr, len(o.Keys))
		for i, k := range o.Keys {
			es[i] = k.E
		}
		return es
	default:
		return nil
	}
}

// Conjuncts flattens nested and(...) calls into a list of conjuncts.
func Conjuncts(e Expr) []Expr {
	if c, ok := e.(*CallExpr); ok && c.Fn == "and" {
		var out []Expr
		for _, a := range c.Args {
			out = append(out, Conjuncts(a)...)
		}
		return out
	}
	return []Expr{e}
}

// AndOf rebuilds a conjunction (True for an empty list).
func AndOf(cs []Expr) Expr {
	switch len(cs) {
	case 0:
		return True()
	case 1:
		return cs[0]
	default:
		return Call("and", cs...)
	}
}

// ExtractJoinCondition is the classic Algebricks join recognition rule: a
// SELECT directly above a cross-product JOIN is split into (a) conjuncts
// that reference only the left branch, pushed left; (b) conjuncts that
// reference only the right branch, pushed right; (c) equality conjuncts
// spanning both branches, which become hash-join keys; (d) a residual that
// stays in the join condition.
type ExtractJoinCondition struct{}

// Name implements Rule.
func (ExtractJoinCondition) Name() string { return "extract-join-condition" }

// Apply implements Rule.
func (ExtractJoinCondition) Apply(p *Plan, slot *Op) (bool, error) {
	sel, ok := (*slot).(*Select)
	if !ok {
		return false, nil
	}
	join, ok := sel.In.(*Join)
	if !ok || len(join.LeftKeys) > 0 {
		return false, nil
	}
	leftVars := Schema(join.Left, nil)
	rightVars := Schema(join.Right, nil)

	var leftPush, rightPush, residual []Expr
	var lk, rk []Expr
	for _, c := range Conjuncts(sel.Cond) {
		switch {
		case UsesOnly(c, leftVars):
			leftPush = append(leftPush, c)
		case UsesOnly(c, rightVars):
			rightPush = append(rightPush, c)
		default:
			if call, ok := c.(*CallExpr); ok && call.Fn == "eq" && len(call.Args) == 2 {
				a, b := call.Args[0], call.Args[1]
				switch {
				case UsesOnly(a, leftVars) && UsesOnly(b, rightVars):
					lk = append(lk, a)
					rk = append(rk, b)
					continue
				case UsesOnly(b, leftVars) && UsesOnly(a, rightVars):
					lk = append(lk, b)
					rk = append(rk, a)
					continue
				}
			}
			residual = append(residual, c)
		}
	}
	if len(lk) == 0 && len(leftPush) == 0 && len(rightPush) == 0 {
		return false, nil
	}
	for _, c := range leftPush {
		join.Left = &Select{Cond: c, In: join.Left}
	}
	for _, c := range rightPush {
		join.Right = &Select{Cond: c, In: join.Right}
	}
	join.LeftKeys = lk
	join.RightKeys = rk
	join.Cond = AndOf(residual)
	*slot = join
	return true, nil
}

// PushSelectBelowAssign moves a SELECT below an ASSIGN whose variable the
// condition does not reference, so filters run as early as possible.
type PushSelectBelowAssign struct{}

// Name implements Rule.
func (PushSelectBelowAssign) Name() string { return "push-select-below-assign" }

// Apply implements Rule.
func (PushSelectBelowAssign) Apply(p *Plan, slot *Op) (bool, error) {
	sel, ok := (*slot).(*Select)
	if !ok {
		return false, nil
	}
	a, ok := sel.In.(*Assign)
	if !ok || UsesVar(sel.Cond, a.V) {
		return false, nil
	}
	sel.In = a.In
	a.In = sel
	*slot = a
	return true, nil
}
