package algebricks

import (
	"fmt"
	"strings"
)

// Plan is a logical query plan: an operator tree rooted at a
// DistributeResult, plus the variable allocator used to create fresh
// variables during rewriting.
type Plan struct {
	Root Op
	Vars *VarAllocator
}

// NewPlan wraps a root operator.
func NewPlan(root Op, vars *VarAllocator) *Plan {
	if vars == nil {
		vars = &VarAllocator{}
	}
	return &Plan{Root: root, Vars: vars}
}

// String renders the plan top-down with indentation, in the style of the
// paper's plan figures.
func (p *Plan) String() string {
	var b strings.Builder
	printOp(&b, p.Root, 0)
	return b.String()
}

func printOp(b *strings.Builder, op Op, depth int) {
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), op.Label())
	if sp, ok := op.(*Subplan); ok {
		fmt.Fprintf(b, "%s{\n", strings.Repeat("  ", depth+1))
		printOp(b, sp.Nested, depth+2)
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", depth+1))
	}
	for _, slot := range op.InputSlots() {
		printOp(b, *slot, depth+1)
	}
}

// Schema computes the variables visible at the output of op. outer is the
// schema a NestedTupleSource exposes (nil outside nested plans).
func Schema(op Op, outer []Var) []Var {
	switch o := op.(type) {
	case *EmptyTupleSource:
		return nil
	case *NestedTupleSource:
		return append([]Var(nil), outer...)
	case *DataScan:
		return append(Schema(o.In, outer), o.V)
	case *Assign:
		return append(Schema(o.In, outer), o.V)
	case *Select:
		return Schema(o.In, outer)
	case *Project:
		return append([]Var(nil), o.Vs...)
	case *Sort:
		return Schema(o.In, outer)
	case *Unnest:
		return append(Schema(o.In, outer), o.V)
	case *Aggregate:
		vs := make([]Var, len(o.Aggs))
		for i, a := range o.Aggs {
			vs[i] = a.V
		}
		return vs
	case *GroupBy:
		var vs []Var
		for _, k := range o.Keys {
			vs = append(vs, k.V)
		}
		for _, a := range o.Aggs {
			vs = append(vs, a.V)
		}
		return vs
	case *Subplan:
		in := Schema(o.In, outer)
		nested := Schema(o.Nested, in)
		return append(in, nested...)
	case *Join:
		return append(Schema(o.Left, outer), Schema(o.Right, outer)...)
	case *DistributeResult:
		return Schema(o.In, outer)
	default:
		panic(fmt.Sprintf("algebricks: unknown operator %T", op))
	}
}

// WalkSlots visits every operator slot of the plan bottom-up (children
// before parents), including nested plans. The visitor may replace the slot
// contents; it returns whether it changed anything.
func (p *Plan) WalkSlots(visit func(slot *Op) (bool, error)) (bool, error) {
	return walkSlot(&p.Root, visit)
}

func walkSlot(slot *Op, visit func(slot *Op) (bool, error)) (bool, error) {
	changed := false
	for _, in := range (*slot).InputSlots() {
		c, err := walkSlot(in, visit)
		if err != nil {
			return changed, err
		}
		changed = changed || c
	}
	if sp, ok := (*slot).(*Subplan); ok {
		c, err := walkSlot(sp.NestedSlot(), visit)
		if err != nil {
			return changed, err
		}
		changed = changed || c
	}
	c, err := visit(slot)
	if err != nil {
		return changed, err
	}
	return changed || c, nil
}

// Rule is one rewrite rule. Apply inspects the operator in slot (and its
// children) and may replace the slot contents; it reports whether it
// changed the plan.
type Rule interface {
	Name() string
	Apply(p *Plan, slot *Op) (bool, error)
}

// maxRewritePasses bounds fixpoint iteration as a safety net against
// oscillating rules.
const maxRewritePasses = 256

// Rewrite applies the rule set bottom-up repeatedly until no rule fires.
func (p *Plan) Rewrite(rules []Rule) error {
	for pass := 0; ; pass++ {
		if pass >= maxRewritePasses {
			return fmt.Errorf("algebricks: rewrite did not reach a fixpoint after %d passes", maxRewritePasses)
		}
		changed, err := p.WalkSlots(func(slot *Op) (bool, error) {
			any := false
			for _, r := range rules {
				c, err := r.Apply(p, slot)
				if err != nil {
					return any, fmt.Errorf("rule %s: %w", r.Name(), err)
				}
				any = any || c
			}
			return any, nil
		})
		if err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}
