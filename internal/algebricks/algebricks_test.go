package algebricks

import (
	"strings"
	"testing"

	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

func bookSource() *runtime.MemSource {
	return &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/books": {
			"a.json": []byte(`{"bookstore":{"book":[
				{"title":"Everyday Italian","author":"Giada","price":30},
				{"title":"XQuery Kick Start","author":"Kurt","price":50}]}}`),
			"b.json": []byte(`{"bookstore":{"book":[
				{"title":"Learning XML","author":"Kurt","price":40}]}}`),
		},
	}}
}

// unoptimizedBookstorePlan builds the Fig. 5 plan for
// collection("/books")("bookstore")("book")().
func unoptimizedBookstorePlan() *Plan {
	vars := &VarAllocator{}
	vColl := vars.New()
	vFile := vars.New()
	vBooks := vars.New()
	vSeq := vars.New()
	vX := vars.New()

	var root Op = &EmptyTupleSource{}
	root = &Assign{V: vColl, E: Call("collection", Call("promote", Call("data", Str("/books")))), In: root}
	root = &Unnest{V: vFile, E: Call("iterate", VarRef(vColl)), In: root}
	root = &Assign{V: vBooks, E: Call("value",
		Call("value", VarRef(vFile), Str("bookstore")),
		Str("book")), In: root}
	root = &Assign{V: vSeq, E: Call("keys-or-members", VarRef(vBooks)), In: root}
	root = &Unnest{V: vX, E: Call("iterate", VarRef(vSeq)), In: root}
	root = &DistributeResult{Vs: []Var{vX}, In: root}
	return NewPlan(root, vars)
}

func runPlan(t *testing.T, p *Plan, opts CompileOptions, src runtime.Source) *hyracks.Result {
	t.Helper()
	job, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v\nplan:\n%s", err, p)
	}
	res, err := hyracks.RunStaged(job, &hyracks.Env{Source: src})
	if err != nil {
		t.Fatalf("RunStaged: %v\njob:\n%s", err, job)
	}
	res.SortRows()
	return res
}

func TestCompileAndRunUnoptimizedBookstore(t *testing.T) {
	res := runPlan(t, unoptimizedBookstorePlan(), CompileOptions{}, bookSource())
	if len(res.Rows) != 3 {
		t.Fatalf("books = %d, want 3", len(res.Rows))
	}
	first, _ := res.Rows[0][0].One()
	if first.Kind() != item.KindObject {
		t.Errorf("book kind = %v", first.Kind())
	}
}

func TestPlanString(t *testing.T) {
	s := unoptimizedBookstorePlan().String()
	for _, want := range []string{"DISTRIBUTE-RESULT", "UNNEST", "ASSIGN", "EMPTY-TUPLE-SOURCE",
		"keys-or-members", "collection", "promote(data("} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %q:\n%s", want, s)
		}
	}
}

func TestSchema(t *testing.T) {
	p := unoptimizedBookstorePlan()
	dr := p.Root.(*DistributeResult)
	schema := Schema(dr.In, nil)
	if len(schema) != 5 {
		t.Fatalf("schema = %v", schema)
	}
	// The last variable is the unnested book.
	if schema[len(schema)-1] != dr.Vs[0] {
		t.Errorf("last schema var %v != result var %v", schema[len(schema)-1], dr.Vs[0])
	}
}

func TestRemoveUnusedAssign(t *testing.T) {
	vars := &VarAllocator{}
	vDead := vars.New()
	vX := vars.New()
	var root Op = &EmptyTupleSource{}
	root = &Assign{V: vDead, E: Num(42), In: root}
	root = &Assign{V: vX, E: Num(7), In: root}
	root = &DistributeResult{Vs: []Var{vX}, In: root}
	p := NewPlan(root, vars)
	if err := p.Rewrite([]Rule{RemoveUnusedAssign{}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.String(), "42") {
		t.Errorf("dead assign not removed:\n%s", p)
	}
	if !strings.Contains(p.String(), "7") {
		t.Errorf("live assign removed:\n%s", p)
	}
}

func TestRemoveUnusedAssignKeepsUsedInNested(t *testing.T) {
	vars := &VarAllocator{}
	vA := vars.New()
	vAgg := vars.New()
	var root Op = &EmptyTupleSource{}
	root = &Assign{V: vA, E: Num(1), In: root}
	root = &Subplan{
		Nested: &Aggregate{
			Aggs: []AggExpr{{V: vAgg, Fn: "count", Arg: VarRef(vA)}},
			In:   &NestedTupleSource{},
		},
		In: root,
	}
	root = &DistributeResult{Vs: []Var{vAgg}, In: root}
	p := NewPlan(root, vars)
	if err := p.Rewrite([]Rule{RemoveUnusedAssign{}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "ASSIGN") {
		t.Errorf("assign used in nested plan must be kept:\n%s", p)
	}
}

func TestConjunctsAndOf(t *testing.T) {
	e := Call("and", Call("and", Str("a"), Str("b")), Str("c"))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if AndOf(nil).String() != "true" {
		t.Errorf("AndOf(nil) = %s", AndOf(nil))
	}
	if AndOf(cs[:1]).String() != `"a"` {
		t.Errorf("AndOf(1) = %s", AndOf(cs[:1]))
	}
	if !strings.HasPrefix(AndOf(cs).String(), "and(") {
		t.Errorf("AndOf(3) = %s", AndOf(cs))
	}
}

func TestSubstAndUses(t *testing.T) {
	vars := &VarAllocator{}
	a, b := vars.New(), vars.New()
	e := Call("eq", Call("value", VarRef(a), Str("k")), VarRef(b))
	if !UsesVar(e, a) || !UsesVar(e, b) {
		t.Error("UsesVar")
	}
	if UsesOnly(e, []Var{a}) {
		t.Error("UsesOnly should fail with b missing")
	}
	if !UsesOnly(e, []Var{a, b}) {
		t.Error("UsesOnly should pass")
	}
	sub := Subst(e, b, Num(3))
	if UsesVar(sub, b) {
		t.Errorf("Subst left %v in %s", b, sub)
	}
	if !UsesVar(sub, a) {
		t.Error("Subst removed unrelated var")
	}
	// Original unchanged (Subst builds new calls).
	if !UsesVar(e, b) {
		t.Error("Subst must not mutate the original")
	}
}

// joinPlan builds: scan books as L, scan books as R, cross join, select
// L.author eq R.author and L.price lt R.price, return [L.title, R.title].
func joinPlan(vars *VarAllocator) (*Plan, Var, Var) {
	path := jsonparse.Path{
		jsonparse.KeyStep("bookstore"), jsonparse.KeyStep("book"), jsonparse.MembersStep(),
	}
	vL := vars.New()
	vR := vars.New()
	vLT := vars.New()
	vRT := vars.New()
	left := Op(&DataScan{Collection: "/books", Project: path, V: vL, In: &EmptyTupleSource{}})
	right := Op(&DataScan{Collection: "/books", Project: path, V: vR, In: &EmptyTupleSource{}})
	join := &Join{Cond: True(), Left: left, Right: right}
	cond := Call("and",
		Call("eq", Call("value", VarRef(vL), Str("author")), Call("value", VarRef(vR), Str("author"))),
		Call("lt", Call("value", VarRef(vL), Str("price")), Call("value", VarRef(vR), Str("price"))),
	)
	var root Op = &Select{Cond: cond, In: join}
	root = &Assign{V: vLT, E: Call("value", VarRef(vL), Str("title")), In: root}
	root = &Assign{V: vRT, E: Call("value", VarRef(vR), Str("title")), In: root}
	root = &DistributeResult{Vs: []Var{vLT, vRT}, In: root}
	return NewPlan(root, vars), vL, vR
}

func TestExtractJoinCondition(t *testing.T) {
	p, _, _ := joinPlan(&VarAllocator{})
	if err := p.Rewrite([]Rule{ExtractJoinCondition{}}); err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "HASH-JOIN") {
		t.Fatalf("join not converted:\n%s", s)
	}
	// The non-equi conjunct must remain as residual.
	if !strings.Contains(s, "residual lt(") {
		t.Errorf("residual missing:\n%s", s)
	}
}

func TestJoinExecution(t *testing.T) {
	for _, parts := range []int{1, 2} {
		p, _, _ := joinPlan(&VarAllocator{})
		if err := p.Rewrite([]Rule{ExtractJoinCondition{}}); err != nil {
			t.Fatal(err)
		}
		res := runPlan(t, p, CompileOptions{Partitions: parts}, bookSource())
		// Kurt wrote "XQuery Kick Start" (50) and "Learning XML" (40):
		// exactly one pair with L.price < R.price.
		if len(res.Rows) != 1 {
			t.Fatalf("parts=%d rows = %d, want 1\nplan:\n%s", parts, len(res.Rows), p)
		}
		lt, _ := res.Rows[0][0].One()
		rt, _ := res.Rows[0][1].One()
		if string(lt.(item.String)) != "Learning XML" || string(rt.(item.String)) != "XQuery Kick Start" {
			t.Errorf("pair = %s, %s", item.JSON(lt), item.JSON(rt))
		}
	}
}

func TestCrossJoinWithoutExtraction(t *testing.T) {
	// Without the extraction rule the select stays above a cross product;
	// results must be identical.
	p, _, _ := joinPlan(&VarAllocator{})
	res := runPlan(t, p, CompileOptions{Partitions: 2}, bookSource())
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestPushSelectBelowAssign(t *testing.T) {
	vars := &VarAllocator{}
	path := jsonparse.Path{
		jsonparse.KeyStep("bookstore"), jsonparse.KeyStep("book"), jsonparse.MembersStep(),
	}
	vX := vars.New()
	vT := vars.New()
	var root Op = &DataScan{Collection: "/books", Project: path, V: vX, In: &EmptyTupleSource{}}
	root = &Assign{V: vT, E: Call("value", VarRef(vX), Str("title")), In: root}
	root = &Select{Cond: Call("eq", Call("value", VarRef(vX), Str("author")), Str("Kurt")), In: root}
	root = &DistributeResult{Vs: []Var{vT}, In: root}
	p := NewPlan(root, vars)
	if err := p.Rewrite([]Rule{PushSelectBelowAssign{}}); err != nil {
		t.Fatal(err)
	}
	// After the rewrite the ASSIGN must be above the SELECT.
	s := p.String()
	ai := strings.Index(s, "ASSIGN")
	si := strings.Index(s, "SELECT")
	if ai == -1 || si == -1 || ai > si {
		t.Errorf("select not pushed below assign:\n%s", s)
	}
	res := runPlan(t, p, CompileOptions{}, bookSource())
	if len(res.Rows) != 2 {
		t.Errorf("Kurt's books = %d, want 2", len(res.Rows))
	}
}

// groupByPlan builds: scan books -> group by author -> count(titles).
func groupByPlan(vars *VarAllocator, fn string) *Plan {
	path := jsonparse.Path{
		jsonparse.KeyStep("bookstore"), jsonparse.KeyStep("book"), jsonparse.MembersStep(),
	}
	vX := vars.New()
	vAuthor := vars.New()
	vCount := vars.New()
	var root Op = &DataScan{Collection: "/books", Project: path, V: vX, In: &EmptyTupleSource{}}
	root = &GroupBy{
		Keys: []KeyExpr{{V: vAuthor, E: Call("value", VarRef(vX), Str("author"))}},
		Aggs: []AggExpr{{V: vCount, Fn: fn, Arg: Call("value", VarRef(vX), Str("title"))}},
		In:   root,
	}
	root = &DistributeResult{Vs: []Var{vAuthor, vCount}, In: root}
	return NewPlan(root, vars)
}

func TestGroupByCompilationModes(t *testing.T) {
	check := func(name string, res *hyracks.Result) {
		t.Helper()
		if len(res.Rows) != 2 {
			t.Fatalf("%s: groups = %d, want 2", name, len(res.Rows))
		}
		counts := map[string]float64{}
		for _, row := range res.Rows {
			a, _ := row[0].One()
			c, _ := row[1].One()
			counts[string(a.(item.String))] = float64(c.(item.Number))
		}
		if counts["Kurt"] != 2 || counts["Giada"] != 1 {
			t.Errorf("%s: counts = %v", name, counts)
		}
	}
	check("1-partition", runPlan(t, groupByPlan(&VarAllocator{}, "count"),
		CompileOptions{Partitions: 1}, bookSource()))
	check("2-partition single-step", runPlan(t, groupByPlan(&VarAllocator{}, "count"),
		CompileOptions{Partitions: 2}, bookSource()))
	check("2-partition two-step", runPlan(t, groupByPlan(&VarAllocator{}, "count"),
		CompileOptions{Partitions: 2, TwoStepAggregation: true}, bookSource()))
}

func TestGroupBySequenceAggNotSplittable(t *testing.T) {
	// sequence aggregation cannot run two-step; the compiler must fall back
	// to single-step and still be correct.
	p := groupByPlan(&VarAllocator{}, "sequence")
	res := runPlan(t, p, CompileOptions{Partitions: 2, TwoStepAggregation: true}, bookSource())
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row[1]) == 0 {
			t.Error("sequence aggregate is empty")
		}
	}
}

func TestAggregateTwoStepAvg(t *testing.T) {
	vars := &VarAllocator{}
	path := jsonparse.Path{
		jsonparse.KeyStep("bookstore"), jsonparse.KeyStep("book"), jsonparse.MembersStep(),
	}
	vX := vars.New()
	vP := vars.New()
	vAvg := vars.New()
	build := func() *Plan {
		var root Op = &DataScan{Collection: "/books", Project: path, V: vX, In: &EmptyTupleSource{}}
		root = &Assign{V: vP, E: Call("value", VarRef(vX), Str("price")), In: root}
		root = &Aggregate{Aggs: []AggExpr{{V: vAvg, Fn: "avg", Arg: VarRef(vP)}}, In: root}
		root = &DistributeResult{Vs: []Var{vAvg}, In: root}
		return NewPlan(root, vars)
	}
	for _, opts := range []CompileOptions{
		{Partitions: 1},
		{Partitions: 2},
		{Partitions: 2, TwoStepAggregation: true},
		{Partitions: 3, TwoStepAggregation: true},
	} {
		res := runPlan(t, build(), opts, bookSource())
		if len(res.Rows) != 1 {
			t.Fatalf("opts %+v: rows = %d", opts, len(res.Rows))
		}
		if !item.EqualSeq(res.Rows[0][0], item.Single(item.Number(40))) {
			t.Errorf("opts %+v: avg = %s, want 40", opts, item.JSONSeq(res.Rows[0][0]))
		}
	}
}

func TestCompileErrors(t *testing.T) {
	vars := &VarAllocator{}
	v := vars.New()
	// Root not DistributeResult.
	if _, err := Compile(NewPlan(&EmptyTupleSource{}, vars), CompileOptions{}); err == nil {
		t.Error("non-DISTRIBUTE-RESULT root must fail")
	}
	// Unknown variable reference.
	bad := &DistributeResult{Vs: []Var{v + 99}, In: &Assign{V: v, E: Num(1), In: &EmptyTupleSource{}}}
	if _, err := Compile(NewPlan(bad, vars), CompileOptions{}); err == nil {
		t.Error("unknown result var must fail")
	}
	// Unknown function.
	badFn := &DistributeResult{Vs: []Var{v},
		In: &Assign{V: v, E: Call("no-such-function"), In: &EmptyTupleSource{}}}
	if _, err := Compile(NewPlan(badFn, vars), CompileOptions{}); err == nil {
		t.Error("unknown function must fail")
	}
	// DataScan not over ETS.
	badScan := &DistributeResult{Vs: []Var{v}, In: &DataScan{
		Collection: "/books", V: v,
		In: &Assign{V: v + 1, E: Num(1), In: &EmptyTupleSource{}},
	}}
	if _, err := Compile(NewPlan(badScan, vars), CompileOptions{}); err == nil {
		t.Error("DATASCAN over non-ETS must fail")
	}
	// NTS outside nested plan.
	badNTS := &DistributeResult{Vs: []Var{}, In: &NestedTupleSource{}}
	if _, err := Compile(NewPlan(badNTS, vars), CompileOptions{}); err == nil {
		t.Error("NTS at top level must fail")
	}
}

func TestVarAllocator(t *testing.T) {
	a := &VarAllocator{}
	v1, v2 := a.New(), a.New()
	if v1 == v2 {
		t.Error("allocator returned duplicate vars")
	}
	if v1.String() != "$v0" {
		t.Errorf("v1 = %s", v1)
	}
}

func TestSubplanCompileAndPrune(t *testing.T) {
	// A subplan whose nested chain has an assign and a select, over a
	// grouped sequence — exercises compileNested and nested pruning.
	vars := &VarAllocator{}
	path := jsonparse.Path{
		jsonparse.KeyStep("bookstore"), jsonparse.KeyStep("book"), jsonparse.MembersStep(),
	}
	vX := vars.New()
	vAuthor := vars.New()
	vSeq := vars.New()
	vJ := vars.New()
	vTitle := vars.New()
	vCount := vars.New()
	var root Op = &DataScan{Collection: "/books", Project: path, V: vX, In: &EmptyTupleSource{}}
	root = &GroupBy{
		Keys: []KeyExpr{{V: vAuthor, E: Call("value", VarRef(vX), Str("author"))}},
		Aggs: []AggExpr{{V: vSeq, Fn: "sequence", Arg: VarRef(vX)}},
		In:   root,
	}
	nested := &Aggregate{
		Aggs: []AggExpr{{V: vCount, Fn: "count", Arg: VarRef(vTitle)}},
		In: &Select{
			Cond: Call("eq", Call("value", VarRef(vJ), Str("author")), Str("Kurt")),
			In: &Assign{
				V: vTitle, E: Call("value", VarRef(vJ), Str("title")),
				In: &Unnest{V: vJ, E: Call("iterate", VarRef(vSeq)), In: &NestedTupleSource{}},
			},
		},
	}
	root = &Subplan{Nested: nested, In: root}
	root = &DistributeResult{Vs: []Var{vAuthor, vCount}, In: root}
	p := NewPlan(root, vars)
	res := runPlan(t, p, CompileOptions{}, bookSource())
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2\nplan:\n%s", len(res.Rows), p)
	}
	counts := map[string]float64{}
	for _, row := range res.Rows {
		a, _ := row[0].One()
		c, _ := row[1].One()
		counts[string(a.(item.String))] = float64(c.(item.Number))
	}
	// Only Kurt's titles are counted inside the subplan.
	if counts["Kurt"] != 2 || counts["Giada"] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCompileNestedErrors(t *testing.T) {
	vars := &VarAllocator{}
	v := vars.New()
	// Nested plan root not an Aggregate.
	badRoot := &DistributeResult{Vs: []Var{v}, In: &Subplan{
		Nested: &NestedTupleSource{},
		In:     &Assign{V: v, E: Num(1), In: &EmptyTupleSource{}},
	}}
	if _, err := Compile(NewPlan(badRoot, vars), CompileOptions{}); err == nil {
		t.Error("nested non-aggregate root must fail")
	}
	// Unsupported nested operator (GroupBy inside a subplan).
	vars2 := &VarAllocator{}
	v2 := vars2.New()
	a2 := vars2.New()
	badNested := &DistributeResult{Vs: []Var{a2}, In: &Subplan{
		Nested: &Aggregate{
			Aggs: []AggExpr{{V: a2, Fn: "count", Arg: VarRef(v2)}},
			In: &GroupBy{
				Keys: []KeyExpr{{V: vars2.New(), E: VarRef(v2)}},
				Aggs: []AggExpr{{V: vars2.New(), Fn: "sequence", Arg: VarRef(v2)}},
				In:   &NestedTupleSource{},
			},
		},
		In: &Assign{V: v2, E: Num(1), In: &EmptyTupleSource{}},
	}}
	if _, err := Compile(NewPlan(badNested, vars2), CompileOptions{}); err == nil {
		t.Error("group-by inside nested plan must fail")
	}
}

func TestExprClone(t *testing.T) {
	e := Call("value", VarRef(3), Str("k"))
	c := e.Clone().(*CallExpr)
	c.Args[1] = Num(9)
	if e.Args[1].String() != `"k"` {
		t.Error("Clone must not share argument slices")
	}
	v := VarRef(5)
	if v.Clone().String() != "$v5" {
		t.Error("VarExpr clone")
	}
	k := Str("x")
	if k.Clone().String() != `"x"` {
		t.Error("ConstExpr clone")
	}
}

func TestOpLabelsAndSlots(t *testing.T) {
	vars := &VarAllocator{}
	v := vars.New()
	sp := &Subplan{Nested: &NestedTupleSource{}, In: &EmptyTupleSource{}}
	if sp.Label() != "SUBPLAN" || len(sp.InputSlots()) != 1 {
		t.Error("subplan label/slots")
	}
	srt := &Sort{Keys: []SortKey{{E: VarRef(v), Desc: true}}, In: &EmptyTupleSource{}}
	if !strings.Contains(srt.Label(), "desc") || len(srt.InputSlots()) != 1 {
		t.Errorf("sort label = %s", srt.Label())
	}
	pr := &Project{Vs: []Var{v}, In: &EmptyTupleSource{}}
	if !strings.Contains(pr.Label(), "$v0") || len(pr.InputSlots()) != 1 {
		t.Errorf("project label = %s", pr.Label())
	}
	scan := &DataScan{Collection: "/c", V: v, In: &EmptyTupleSource{}}
	if !strings.Contains(scan.Label(), "/c") {
		t.Errorf("scan label = %s", scan.Label())
	}
	for _, r := range []Rule{RemoveUnusedAssign{}, ExtractJoinCondition{}, PushSelectBelowAssign{}} {
		if r.Name() == "" {
			t.Error("rule names must be non-empty")
		}
	}
}

func TestSchemaAllOperators(t *testing.T) {
	vars := &VarAllocator{}
	v1, v2, v3 := vars.New(), vars.New(), vars.New()
	base := Op(&Assign{V: v1, E: Num(1), In: &EmptyTupleSource{}})
	cases := []struct {
		op   Op
		want int
	}{
		{&Select{Cond: True(), In: base}, 1},
		{&Sort{Keys: []SortKey{{E: VarRef(v1)}}, In: base}, 1},
		{&Unnest{V: v2, E: Call("iterate", VarRef(v1)), In: base}, 2},
		{&Project{Vs: []Var{v1}, In: base}, 1},
		{&Aggregate{Aggs: []AggExpr{{V: v3, Fn: "count", Arg: VarRef(v1)}}, In: base}, 1},
		{&GroupBy{Keys: []KeyExpr{{V: v2, E: VarRef(v1)}},
			Aggs: []AggExpr{{V: v3, Fn: "sequence", Arg: VarRef(v1)}}, In: base}, 2},
		{&Join{Cond: True(), Left: base, Right: &Assign{V: v2, E: Num(2), In: &EmptyTupleSource{}}}, 2},
		{&Subplan{Nested: &Aggregate{Aggs: []AggExpr{{V: v3, Fn: "count", Arg: VarRef(v1)}},
			In: &NestedTupleSource{}}, In: base}, 2},
	}
	for i, c := range cases {
		if got := len(Schema(c.op, nil)); got != c.want {
			t.Errorf("case %d (%T): schema size = %d, want %d", i, c.op, got, c.want)
		}
	}
}
