package algebricks

import (
	"fmt"
	"strings"

	"vxq/internal/hyracks"
	"vxq/internal/jsonparse"
)

// Op is a logical operator. Operators form a tree via input slots; the
// rewriter mutates trees by replacing the contents of slots.
type Op interface {
	// Label renders the operator head for plan printing.
	Label() string
	// InputSlots returns pointers to the operator's input slots, leftmost
	// first, so rules can replace children in place.
	InputSlots() []*Op
}

// EmptyTupleSource is the leaf operator producing one empty tuple (§3.2).
type EmptyTupleSource struct{}

// Label implements Op.
func (*EmptyTupleSource) Label() string { return "EMPTY-TUPLE-SOURCE" }

// InputSlots implements Op.
func (*EmptyTupleSource) InputSlots() []*Op { return nil }

// NestedTupleSource is the leaf of a nested (subplan / group-by) plan; it
// stands for the outer tuple being processed.
type NestedTupleSource struct{}

// Label implements Op.
func (*NestedTupleSource) Label() string { return "NESTED-TUPLE-SOURCE" }

// InputSlots implements Op.
func (*NestedTupleSource) InputSlots() []*Op { return nil }

// DataScan is Algebricks' DATASCAN operator (§4.2): it iterates over the
// files of a collection, and — when Project is non-empty — applies the
// projection path while parsing, emitting one V-binding per matching item.
// DataScan is what enables partitioned-parallel execution.
type DataScan struct {
	Collection string
	Project    jsonparse.Path
	V          Var
	In         Op
	// Filter enables zone-map file pruning at run time (attached by the
	// index rule; may be nil).
	Filter *hyracks.ScanFilter
}

// Label implements Op.
func (o *DataScan) Label() string {
	suffix := ""
	if o.Filter != nil {
		suffix = " filter{" + o.Filter.String() + "}"
	}
	if len(o.Project) == 0 {
		return fmt.Sprintf("DATASCAN %v <- collection(%q)%s", o.V, o.Collection, suffix)
	}
	return fmt.Sprintf("DATASCAN %v <- collection(%q)%s%s", o.V, o.Collection, o.Project, suffix)
}

// InputSlots implements Op.
func (o *DataScan) InputSlots() []*Op { return []*Op{&o.In} }

// Assign evaluates a scalar expression and binds its result to V.
type Assign struct {
	V  Var
	E  Expr
	In Op
}

// Label implements Op.
func (o *Assign) Label() string { return fmt.Sprintf("ASSIGN %v := %s", o.V, o.E) }

// InputSlots implements Op.
func (o *Assign) InputSlots() []*Op { return []*Op{&o.In} }

// Select filters tuples by the effective boolean value of Cond.
type Select struct {
	Cond Expr
	In   Op
}

// Label implements Op.
func (o *Select) Label() string { return fmt.Sprintf("SELECT %s", o.Cond) }

// InputSlots implements Op.
func (o *Select) InputSlots() []*Op { return []*Op{&o.In} }

// Unnest evaluates an unnesting expression and emits one tuple per item,
// bound to V.
type Unnest struct {
	V  Var
	E  Expr
	In Op
}

// Label implements Op.
func (o *Unnest) Label() string { return fmt.Sprintf("UNNEST %v <- %s", o.V, o.E) }

// InputSlots implements Op.
func (o *Unnest) InputSlots() []*Op { return []*Op{&o.In} }

// AggExpr is one aggregate computation inside an Aggregate or GroupBy.
type AggExpr struct {
	V   Var
	Fn  string // logical aggregate name: "sequence", "count", "sum", "avg"
	Arg Expr
}

func (a AggExpr) String() string { return fmt.Sprintf("%v := %s(%s)", a.V, a.Fn, a.Arg) }

// Aggregate folds its whole input into one tuple (§3.2).
type Aggregate struct {
	Aggs []AggExpr
	In   Op
}

// Label implements Op.
func (o *Aggregate) Label() string { return "AGGREGATE " + aggList(o.Aggs) }

// InputSlots implements Op.
func (o *Aggregate) InputSlots() []*Op { return []*Op{&o.In} }

func aggList(aggs []AggExpr) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// KeyExpr is one group-by key definition.
type KeyExpr struct {
	V Var
	E Expr
}

func (k KeyExpr) String() string { return fmt.Sprintf("%v := %s", k.V, k.E) }

// GroupBy groups its input by the key expressions and runs the aggregate
// expressions per group (its "inner focus" in the paper's wording).
type GroupBy struct {
	Keys []KeyExpr
	Aggs []AggExpr
	In   Op
}

// Label implements Op.
func (o *GroupBy) Label() string {
	keys := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		keys[i] = k.String()
	}
	return fmt.Sprintf("GROUP-BY [%s] { AGGREGATE %s }", strings.Join(keys, ", "), aggList(o.Aggs))
}

// InputSlots implements Op.
func (o *GroupBy) InputSlots() []*Op { return []*Op{&o.In} }

// Subplan runs Nested (a plan rooted at an Aggregate, with a
// NestedTupleSource leaf) once per input tuple and appends the nested
// aggregate's bindings to the tuple.
type Subplan struct {
	Nested Op
	In     Op
}

// Label implements Op.
func (o *Subplan) Label() string { return "SUBPLAN" }

// InputSlots implements Op.
func (o *Subplan) InputSlots() []*Op { return []*Op{&o.In} }

// NestedSlot returns the slot of the nested plan root.
func (o *Subplan) NestedSlot() *Op { return &o.Nested }

// Join is a binary join. Before optimization Cond holds the whole predicate
// (True for a cross product); the join-extraction rule moves equality
// conjuncts into LeftKeys/RightKeys for hash execution, leaving any residual
// in Cond.
type Join struct {
	Cond      Expr
	LeftKeys  []Expr
	RightKeys []Expr
	Left      Op
	Right     Op
}

// Label implements Op.
func (o *Join) Label() string {
	if len(o.LeftKeys) > 0 {
		lk := make([]string, len(o.LeftKeys))
		rk := make([]string, len(o.RightKeys))
		for i := range o.LeftKeys {
			lk[i] = o.LeftKeys[i].String()
			rk[i] = o.RightKeys[i].String()
		}
		return fmt.Sprintf("HASH-JOIN [%s] = [%s] residual %s",
			strings.Join(lk, ", "), strings.Join(rk, ", "), o.Cond)
	}
	return fmt.Sprintf("JOIN %s", o.Cond)
}

// InputSlots implements Op.
func (o *Join) InputSlots() []*Op { return []*Op{&o.Left, &o.Right} }

// SortKey is one ordering key of a Sort.
type SortKey struct {
	E    Expr
	Desc bool
}

// Sort orders the tuple stream by its keys (the XQuery order-by clause).
type Sort struct {
	Keys []SortKey
	In   Op
}

// Label implements Op.
func (o *Sort) Label() string {
	keys := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		keys[i] = k.E.String()
		if k.Desc {
			keys[i] += " desc"
		}
	}
	return fmt.Sprintf("ORDER-BY [%s]", strings.Join(keys, ", "))
}

// InputSlots implements Op.
func (o *Sort) InputSlots() []*Op { return []*Op{&o.In} }

// Project restricts the tuple to the listed variables. Projects are
// inserted by the column-pruning pass at physical compilation time so dead
// columns are not carried through the pipeline; rewrite rules never see
// them.
type Project struct {
	Vs []Var
	In Op
}

// Label implements Op.
func (o *Project) Label() string {
	vs := make([]string, len(o.Vs))
	for i, v := range o.Vs {
		vs[i] = v.String()
	}
	return fmt.Sprintf("PROJECT [%s]", strings.Join(vs, ", "))
}

// InputSlots implements Op.
func (o *Project) InputSlots() []*Op { return []*Op{&o.In} }

// DistributeResult is the plan root: it returns the listed variables.
type DistributeResult struct {
	Vs []Var
	In Op
}

// Label implements Op.
func (o *DistributeResult) Label() string {
	vs := make([]string, len(o.Vs))
	for i, v := range o.Vs {
		vs[i] = v.String()
	}
	return fmt.Sprintf("DISTRIBUTE-RESULT [%s]", strings.Join(vs, ", "))
}

// InputSlots implements Op.
func (o *DistributeResult) InputSlots() []*Op { return []*Op{&o.In} }
