// Package algebricks implements the language-agnostic query algebra layer
// underneath the JSONiq processor, modeled on Algebricks (Borkar et al.,
// SoCC 2015): a logical operator algebra, a rewrite-rule framework applied
// to fixpoint, and a physical compiler that turns the optimized logical
// plan into a Hyracks job (vxq/internal/hyracks), choosing exchanges and
// the two-step aggregation scheme.
package algebricks

import (
	"fmt"
	"strings"

	"vxq/internal/item"
)

// Var is a logical variable produced by an operator and referenced by
// expressions of the operators above it.
type Var int

// String renders the variable as $vN.
func (v Var) String() string { return fmt.Sprintf("$v%d", int(v)) }

// VarAllocator hands out fresh variables.
type VarAllocator struct{ next Var }

// New returns a fresh variable.
func (a *VarAllocator) New() Var {
	v := a.next
	a.next++
	return v
}

// Expr is a logical scalar expression.
type Expr interface {
	String() string
	// FreeVars appends the variables the expression references.
	FreeVars(dst []Var) []Var
	// Clone returns a deep copy.
	Clone() Expr
}

// VarExpr references a variable.
type VarExpr struct{ V Var }

// String implements Expr.
func (e *VarExpr) String() string { return e.V.String() }

// FreeVars implements Expr.
func (e *VarExpr) FreeVars(dst []Var) []Var { return append(dst, e.V) }

// Clone implements Expr.
func (e *VarExpr) Clone() Expr { return &VarExpr{V: e.V} }

// ConstExpr is a constant sequence.
type ConstExpr struct{ Seq item.Sequence }

// String implements Expr.
func (e *ConstExpr) String() string { return item.JSONSeq(e.Seq) }

// FreeVars implements Expr.
func (e *ConstExpr) FreeVars(dst []Var) []Var { return dst }

// Clone implements Expr.
func (e *ConstExpr) Clone() Expr { return &ConstExpr{Seq: e.Seq} }

// CallExpr applies a named scalar function (resolved against the runtime
// function registry at compile time) to argument expressions.
type CallExpr struct {
	Fn   string
	Args []Expr
}

// String implements Expr.
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(args, ", ") + ")"
}

// FreeVars implements Expr.
func (e *CallExpr) FreeVars(dst []Var) []Var {
	for _, a := range e.Args {
		dst = a.FreeVars(dst)
	}
	return dst
}

// Clone implements Expr.
func (e *CallExpr) Clone() Expr {
	args := make([]Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Clone()
	}
	return &CallExpr{Fn: e.Fn, Args: args}
}

// Call builds a CallExpr.
func Call(fn string, args ...Expr) *CallExpr { return &CallExpr{Fn: fn, Args: args} }

// VarRef builds a VarExpr.
func VarRef(v Var) *VarExpr { return &VarExpr{V: v} }

// Str builds a string constant.
func Str(s string) *ConstExpr { return &ConstExpr{Seq: item.Single(item.String(s))} }

// Num builds a numeric constant.
func Num(n float64) *ConstExpr { return &ConstExpr{Seq: item.Single(item.Number(n))} }

// True is the boolean true constant.
func True() *ConstExpr { return &ConstExpr{Seq: item.Single(item.Bool(true))} }

// Subst returns e with every reference to from replaced by a clone of to.
func Subst(e Expr, from Var, to Expr) Expr {
	switch x := e.(type) {
	case *VarExpr:
		if x.V == from {
			return to.Clone()
		}
		return x
	case *ConstExpr:
		return x
	case *CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Subst(a, from, to)
		}
		return &CallExpr{Fn: x.Fn, Args: args}
	default:
		return e
	}
}

// UsesVar reports whether e references v.
func UsesVar(e Expr, v Var) bool {
	for _, f := range e.FreeVars(nil) {
		if f == v {
			return true
		}
	}
	return false
}

// UsesOnly reports whether every variable e references is in allowed.
func UsesOnly(e Expr, allowed []Var) bool {
	set := make(map[Var]bool, len(allowed))
	for _, v := range allowed {
		set[v] = true
	}
	for _, f := range e.FreeVars(nil) {
		if !set[f] {
			return false
		}
	}
	return true
}
