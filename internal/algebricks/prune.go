package algebricks

// Column pruning: Algebricks inserts PROJECT operators so that only the
// variables still needed above each operator are carried in its output
// tuples. Without this, an operator chain accumulates every upstream field
// — in the unoptimized plans that means the whole materialized collection
// is copied into every downstream tuple. Pruning runs automatically at the
// start of physical compilation (it is part of the substrate, not of the
// paper's JSONiq rule categories, which are about *what* is materialized,
// not about dead columns).

type varSet map[Var]bool

func (s varSet) clone() varSet {
	out := make(varSet, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

func (s varSet) addExpr(e Expr) {
	for _, v := range e.FreeVars(nil) {
		s[v] = true
	}
}

// PruneColumns inserts PROJECT operators below each operator so that dead
// columns are dropped as early as possible. It mutates the plan.
func PruneColumns(p *Plan) {
	if dr, ok := p.Root.(*DistributeResult); ok {
		req := varSet{}
		for _, v := range dr.Vs {
			req[v] = true
		}
		dr.In = pruneOp(dr.In, req, nil)
	}
}

// pruneOp prunes the subtree rooted at op, given the set of variables its
// consumers require, and returns the (possibly wrapped) operator. outer is
// the schema a NestedTupleSource exposes.
func pruneOp(op Op, required varSet, outer []Var) Op {
	switch o := op.(type) {
	case *EmptyTupleSource, *NestedTupleSource, *DataScan:
		return op

	case *Assign:
		childReq := required.clone()
		delete(childReq, o.V)
		childReq.addExpr(o.E)
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *Select:
		childReq := required.clone()
		childReq.addExpr(o.Cond)
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *Unnest:
		childReq := required.clone()
		delete(childReq, o.V)
		childReq.addExpr(o.E)
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *Project:
		o.In = projectTo(pruneOp(o.In, required, outer), required, outer)
		return o

	case *Sort:
		childReq := required.clone()
		for _, k := range o.Keys {
			childReq.addExpr(k.E)
		}
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *Aggregate:
		childReq := varSet{}
		for _, a := range o.Aggs {
			childReq.addExpr(a.Arg)
		}
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *GroupBy:
		childReq := varSet{}
		for _, k := range o.Keys {
			childReq.addExpr(k.E)
		}
		for _, a := range o.Aggs {
			childReq.addExpr(a.Arg)
		}
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *Subplan:
		childReq := required.clone()
		// The nested plan's expressions may reference outer variables.
		collectNestedUses(o.Nested, childReq)
		inSchema := Schema(o.In, outer)
		o.Nested = pruneNested(o.Nested, inSchema)
		o.In = projectTo(pruneOp(o.In, childReq, outer), childReq, outer)
		return o

	case *Join:
		childReq := required.clone()
		childReq.addExpr(o.Cond)
		for _, e := range o.LeftKeys {
			childReq.addExpr(e)
		}
		for _, e := range o.RightKeys {
			childReq.addExpr(e)
		}
		o.Left = projectTo(pruneOp(o.Left, childReq, outer), childReq, outer)
		o.Right = projectTo(pruneOp(o.Right, childReq, outer), childReq, outer)
		return o

	case *DistributeResult:
		// Handled at the top level only.
		return op

	default:
		return op
	}
}

// pruneNested prunes inside a subplan's nested chain (its leaf sees the
// outer schema).
func pruneNested(root Op, outer []Var) Op {
	agg, ok := root.(*Aggregate)
	if !ok {
		return root
	}
	req := varSet{}
	for _, a := range agg.Aggs {
		req.addExpr(a.Arg)
	}
	agg.In = projectTo(pruneOp(agg.In, req, outer), req, outer)
	return agg
}

// collectNestedUses adds every variable referenced by the nested plan's
// expressions to req (conservatively including nested-internal variables,
// which simply never occur in the outer schema).
func collectNestedUses(op Op, req varSet) {
	for _, e := range nestedExprs(op) {
		req.addExpr(e)
	}
	for _, in := range op.InputSlots() {
		collectNestedUses(*in, req)
	}
	if sp, ok := op.(*Subplan); ok {
		collectNestedUses(sp.Nested, req)
	}
}

func nestedExprs(op Op) []Expr {
	switch o := op.(type) {
	case *Assign:
		return []Expr{o.E}
	case *Select:
		return []Expr{o.Cond}
	case *Unnest:
		return []Expr{o.E}
	case *Aggregate:
		es := make([]Expr, len(o.Aggs))
		for i, a := range o.Aggs {
			es[i] = a.Arg
		}
		return es
	case *GroupBy:
		var es []Expr
		for _, k := range o.Keys {
			es = append(es, k.E)
		}
		for _, a := range o.Aggs {
			es = append(es, a.Arg)
		}
		return es
	default:
		return nil
	}
}

// projectTo wraps child in a PROJECT keeping only the required variables,
// when that actually drops columns.
func projectTo(child Op, required varSet, outer []Var) Op {
	schema := Schema(child, outer)
	keep := make([]Var, 0, len(schema))
	for _, v := range schema {
		if required[v] {
			keep = append(keep, v)
		}
	}
	if len(keep) == len(schema) {
		return child
	}
	if p, ok := child.(*Project); ok {
		p.Vs = keep
		return p
	}
	return &Project{Vs: keep, In: child}
}
