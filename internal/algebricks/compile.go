package algebricks

import (
	"fmt"

	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// CompileOptions controls physical plan generation.
type CompileOptions struct {
	// Partitions is the number of partitions for partitioned-parallel
	// fragments (those rooted at a DATASCAN). Non-partitioned plans (the
	// unoptimized collection() evaluation) always run on one partition,
	// which is exactly the paper's observation that DATASCAN is what
	// unlocks partitioned parallelism.
	Partitions int
	// TwoStepAggregation enables Algebricks' local/global aggregation
	// scheme (§4.3) for group-bys and aggregates over partitioned input.
	TwoStepAggregation bool
	// ScanFormat selects how DATASCAN decodes collection files (raw JSON
	// by default; binary ADM for the AsterixDB-load simulator).
	ScanFormat hyracks.ScanFormat
}

// Compile lowers an optimized logical plan to a Hyracks job.
func Compile(p *Plan, opts CompileOptions) (*hyracks.Job, error) {
	if opts.Partitions <= 0 {
		opts.Partitions = 1
	}
	PruneColumns(p)
	c := &compiler{opts: opts, job: &hyracks.Job{}}
	dr, ok := p.Root.(*DistributeResult)
	if !ok {
		return nil, fmt.Errorf("algebricks: plan root must be DISTRIBUTE-RESULT, got %T", p.Root)
	}
	s, err := c.compile(dr.In)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(dr.Vs))
	for i, v := range dr.Vs {
		col, err := columnOf(s.schema, v)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	s.ops = append(s.ops, &hyracks.ProjectSpec{Cols: cols})
	c.job.Fragments = append(c.job.Fragments, &hyracks.Fragment{
		ID: c.nextFragID(), Source: s.src, Ops: fuseProjects(s.ops),
		Partitions: s.partitions, SinkExchange: -1,
	})
	if err := c.job.Validate(); err != nil {
		return nil, err
	}
	return c.job, nil
}

type compiler struct {
	opts    CompileOptions
	job     *hyracks.Job
	fragSeq int
	exchSeq int
}

func (c *compiler) nextFragID() int {
	id := c.fragSeq
	c.fragSeq++
	return id
}

// stream is a fragment under construction.
type stream struct {
	src        hyracks.SourceSpec
	ops        []hyracks.OpSpec
	partitions int
	schema     []Var
}

// closeToExchange finalizes the stream's fragment, sinking into a new
// exchange, and returns the exchange id.
func (c *compiler) closeToExchange(s *stream, kind hyracks.ExchangeKind,
	keys []runtime.Evaluator, consumers int) int {
	id := c.exchSeq
	c.exchSeq++
	c.job.Exchanges = append(c.job.Exchanges, &hyracks.Exchange{
		ID: id, Kind: kind, Keys: keys, ConsumerPartitions: consumers,
	})
	c.job.Fragments = append(c.job.Fragments, &hyracks.Fragment{
		ID: c.nextFragID(), Source: s.src, Ops: fuseProjects(s.ops),
		Partitions: s.partitions, SinkExchange: id,
	})
	return id
}

// fuseProjects merges each ProjectSpec into the preceding ASSIGN / SELECT
// operator's fused output projection, so dead fields are dropped at emit
// time rather than copied and re-projected. UNNEST is deliberately *not*
// fused: like Hyracks, it writes complete output tuples into frames, so a
// plan that unnests a large materialized sequence pays for copying it —
// the very cost the paper's pipelining rules eliminate (§4.2).
func fuseProjects(ops []hyracks.OpSpec) []hyracks.OpSpec {
	out := make([]hyracks.OpSpec, 0, len(ops))
	for _, op := range ops {
		pr, ok := op.(*hyracks.ProjectSpec)
		if !ok || len(out) == 0 {
			out = append(out, op)
			continue
		}
		switch prev := out[len(out)-1].(type) {
		case *hyracks.AssignSpec:
			if prev.OutCols == nil {
				prev.OutCols = pr.Cols
				continue
			}
		case *hyracks.SelectSpec:
			if prev.OutCols == nil {
				prev.OutCols = pr.Cols
				continue
			}
		}
		out = append(out, op)
	}
	return out
}

func columnOf(schema []Var, v Var) (int, error) {
	for i, sv := range schema {
		if sv == v {
			return i, nil
		}
	}
	return 0, fmt.Errorf("algebricks: variable %v not in schema %v", v, schema)
}

// exprEval compiles a logical expression to a runtime evaluator over the
// given schema.
func exprEval(e Expr, schema []Var) (runtime.Evaluator, error) {
	switch x := e.(type) {
	case *VarExpr:
		col, err := columnOf(schema, x.V)
		if err != nil {
			return nil, err
		}
		return runtime.ColumnEval{Col: col}, nil
	case *ConstExpr:
		return runtime.ConstEval{Seq: x.Seq}, nil
	case *CallExpr:
		fn, err := runtime.LookupFunction(x.Fn)
		if err != nil {
			return nil, err
		}
		args := make([]runtime.Evaluator, len(x.Args))
		for i, a := range x.Args {
			ev, err := exprEval(a, schema)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		return runtime.CallEval{Fn: fn, Args: args}, nil
	default:
		return nil, fmt.Errorf("algebricks: unknown expression %T", e)
	}
}

// Aggregate function lowering tables: logical name to physical aggregate
// for single-step, local and global execution.
var (
	aggSingle = map[string]string{
		"sequence": "agg-sequence", "count": "agg-count",
		"sum": "agg-sum", "avg": "agg-avg",
		"min": "agg-min", "max": "agg-max",
	}
	aggLocal = map[string]string{
		"count": "agg-count", "sum": "agg-sum", "avg": "agg-avg-local",
		"min": "agg-min", "max": "agg-max",
	}
	aggGlobal = map[string]string{
		"count": "agg-sum", "sum": "agg-sum", "avg": "agg-avg-global",
		"min": "agg-min", "max": "agg-max",
	}
)

func splittable(aggs []AggExpr) bool {
	for _, a := range aggs {
		if _, ok := aggLocal[a.Fn]; !ok {
			return false
		}
	}
	return true
}

func (c *compiler) aggDefs(aggs []AggExpr, schema []Var, table map[string]string) ([]hyracks.AggDef, error) {
	defs := make([]hyracks.AggDef, len(aggs))
	for i, a := range aggs {
		phys, ok := table[a.Fn]
		if !ok {
			return nil, fmt.Errorf("algebricks: no physical aggregate for %q", a.Fn)
		}
		fn, err := runtime.LookupAgg(phys)
		if err != nil {
			return nil, err
		}
		arg, err := exprEval(a.Arg, schema)
		if err != nil {
			return nil, err
		}
		defs[i] = hyracks.AggDef{Fn: fn, Arg: arg}
	}
	return defs, nil
}

func (c *compiler) compile(op Op) (*stream, error) {
	switch o := op.(type) {
	case *EmptyTupleSource:
		return &stream{src: hyracks.ETSSource{}, partitions: 1}, nil

	case *DataScan:
		if _, ok := o.In.(*EmptyTupleSource); !ok {
			return nil, fmt.Errorf("algebricks: DATASCAN input must be EMPTY-TUPLE-SOURCE, got %T", o.In)
		}
		return &stream{
			src:        hyracks.ScanSource{Collection: o.Collection, Project: o.Project, Format: c.opts.ScanFormat, Filter: o.Filter},
			partitions: c.opts.Partitions,
			schema:     []Var{o.V},
		}, nil

	case *Assign:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		ev, err := exprEval(o.E, s.schema)
		if err != nil {
			return nil, err
		}
		s.ops = append(s.ops, &hyracks.AssignSpec{Evals: []runtime.Evaluator{ev}, Desc: o.Label()})
		s.schema = append(s.schema, o.V)
		return s, nil

	case *Select:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		ev, err := exprEval(o.Cond, s.schema)
		if err != nil {
			return nil, err
		}
		s.ops = append(s.ops, &hyracks.SelectSpec{Cond: ev, Desc: o.Cond.String()})
		return s, nil

	case *Project:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		cols := make([]int, len(o.Vs))
		for i, v := range o.Vs {
			col, err := columnOf(s.schema, v)
			if err != nil {
				return nil, err
			}
			cols[i] = col
		}
		s.ops = append(s.ops, &hyracks.ProjectSpec{Cols: cols})
		s.schema = append([]Var(nil), o.Vs...)
		return s, nil

	case *Unnest:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		ev, err := exprEval(o.E, s.schema)
		if err != nil {
			return nil, err
		}
		s.ops = append(s.ops, &hyracks.UnnestSpec{Expr: ev, Desc: o.Label()})
		s.schema = append(s.schema, o.V)
		return s, nil

	case *Subplan:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		nestedOps, nestedVars, err := c.compileNested(o.Nested, s.schema)
		if err != nil {
			return nil, err
		}
		s.ops = append(s.ops, &hyracks.SubplanSpec{Nested: nestedOps, Desc: "nested plan"})
		s.schema = append(s.schema, nestedVars...)
		return s, nil

	case *Aggregate:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		outVars := make([]Var, len(o.Aggs))
		for i, a := range o.Aggs {
			outVars[i] = a.V
		}
		if s.partitions == 1 {
			defs, err := c.aggDefs(o.Aggs, s.schema, aggSingle)
			if err != nil {
				return nil, err
			}
			s.ops = append(s.ops, &hyracks.AggregateSpec{Aggs: defs, Desc: aggList(o.Aggs)})
			s.schema = outVars
			return s, nil
		}
		if c.opts.TwoStepAggregation && splittable(o.Aggs) {
			local, err := c.aggDefs(o.Aggs, s.schema, aggLocal)
			if err != nil {
				return nil, err
			}
			s.ops = append(s.ops, &hyracks.AggregateSpec{Aggs: local, Desc: "local " + aggList(o.Aggs)})
			exch := c.closeToExchange(s, hyracks.ExchangeMerge, nil, 1)
			gs := &stream{src: hyracks.ExchangeSource{Exchange: exch}, partitions: 1, schema: outVars}
			global := make([]hyracks.AggDef, len(o.Aggs))
			for i, a := range o.Aggs {
				fn, err := runtime.LookupAgg(aggGlobal[a.Fn])
				if err != nil {
					return nil, err
				}
				global[i] = hyracks.AggDef{Fn: fn, Arg: runtime.ColumnEval{Col: i}}
			}
			gs.ops = append(gs.ops, &hyracks.AggregateSpec{Aggs: global, Desc: "global " + aggList(o.Aggs)})
			gs.schema = outVars
			return gs, nil
		}
		// Not splittable (or two-step disabled): merge everything to one
		// partition, then aggregate in a single step.
		exch := c.closeToExchange(s, hyracks.ExchangeMerge, nil, 1)
		gs := &stream{src: hyracks.ExchangeSource{Exchange: exch}, partitions: 1, schema: s.schema}
		defs, err := c.aggDefs(o.Aggs, gs.schema, aggSingle)
		if err != nil {
			return nil, err
		}
		gs.ops = append(gs.ops, &hyracks.AggregateSpec{Aggs: defs, Desc: aggList(o.Aggs)})
		gs.schema = outVars
		return gs, nil

	case *GroupBy:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		keyEvals := make([]runtime.Evaluator, len(o.Keys))
		for i, k := range o.Keys {
			ev, err := exprEval(k.E, s.schema)
			if err != nil {
				return nil, err
			}
			keyEvals[i] = ev
		}
		outVars := make([]Var, 0, len(o.Keys)+len(o.Aggs))
		for _, k := range o.Keys {
			outVars = append(outVars, k.V)
		}
		for _, a := range o.Aggs {
			outVars = append(outVars, a.V)
		}
		if s.partitions == 1 {
			defs, err := c.aggDefs(o.Aggs, s.schema, aggSingle)
			if err != nil {
				return nil, err
			}
			s.ops = append(s.ops, &hyracks.GroupBySpec{Keys: keyEvals, Aggs: defs, Desc: o.Label()})
			s.schema = outVars
			return s, nil
		}
		if c.opts.TwoStepAggregation && splittable(o.Aggs) {
			local, err := c.aggDefs(o.Aggs, s.schema, aggLocal)
			if err != nil {
				return nil, err
			}
			s.ops = append(s.ops, &hyracks.GroupBySpec{Keys: keyEvals, Aggs: local, Desc: "local"})
			// After the local group-by the key occupies columns [0,k).
			exchKeys := make([]runtime.Evaluator, len(o.Keys))
			for i := range o.Keys {
				exchKeys[i] = runtime.ColumnEval{Col: i}
			}
			parts := s.partitions
			exch := c.closeToExchange(s, hyracks.ExchangeHash, exchKeys, parts)
			gs := &stream{src: hyracks.ExchangeSource{Exchange: exch}, partitions: parts}
			globalKeys := make([]runtime.Evaluator, len(o.Keys))
			for i := range o.Keys {
				globalKeys[i] = runtime.ColumnEval{Col: i}
			}
			global := make([]hyracks.AggDef, len(o.Aggs))
			for i, a := range o.Aggs {
				fn, err := runtime.LookupAgg(aggGlobal[a.Fn])
				if err != nil {
					return nil, err
				}
				global[i] = hyracks.AggDef{Fn: fn, Arg: runtime.ColumnEval{Col: len(o.Keys) + i}}
			}
			gs.ops = append(gs.ops, &hyracks.GroupBySpec{Keys: globalKeys, Aggs: global, Desc: "global"})
			gs.schema = outVars
			return gs, nil
		}
		// Single-step over partitioned input: repartition raw tuples by the
		// key expressions, then group in one pass.
		parts := s.partitions
		inputSchema := s.schema
		exch := c.closeToExchange(s, hyracks.ExchangeHash, keyEvals, parts)
		gs := &stream{src: hyracks.ExchangeSource{Exchange: exch}, partitions: parts, schema: inputSchema}
		keyEvals2 := make([]runtime.Evaluator, len(o.Keys))
		for i, k := range o.Keys {
			ev, err := exprEval(k.E, gs.schema)
			if err != nil {
				return nil, err
			}
			keyEvals2[i] = ev
		}
		defs, err := c.aggDefs(o.Aggs, gs.schema, aggSingle)
		if err != nil {
			return nil, err
		}
		gs.ops = append(gs.ops, &hyracks.GroupBySpec{Keys: keyEvals2, Aggs: defs, Desc: o.Label()})
		gs.schema = outVars
		return gs, nil

	case *Sort:
		s, err := c.compile(o.In)
		if err != nil {
			return nil, err
		}
		// A global order needs all tuples in one place: merge partitioned
		// streams to a single partition before sorting.
		if s.partitions > 1 {
			exch := c.closeToExchange(s, hyracks.ExchangeMerge, nil, 1)
			s = &stream{src: hyracks.ExchangeSource{Exchange: exch}, partitions: 1, schema: s.schema}
		}
		defs := make([]hyracks.SortDef, len(o.Keys))
		for i, k := range o.Keys {
			ev, err := exprEval(k.E, s.schema)
			if err != nil {
				return nil, err
			}
			defs[i] = hyracks.SortDef{Key: ev, Desc: k.Desc}
		}
		s.ops = append(s.ops, &hyracks.SortSpec{Keys: defs, Desc: o.Label()})
		return s, nil

	case *Join:
		return c.compileJoin(o)

	case *DistributeResult:
		return nil, fmt.Errorf("algebricks: nested DISTRIBUTE-RESULT")

	case *NestedTupleSource:
		return nil, fmt.Errorf("algebricks: NESTED-TUPLE-SOURCE outside a nested plan")

	default:
		return nil, fmt.Errorf("algebricks: cannot compile %T", op)
	}
}

func (c *compiler) compileJoin(o *Join) (*stream, error) {
	sl, err := c.compile(o.Left)
	if err != nil {
		return nil, err
	}
	sr, err := c.compile(o.Right)
	if err != nil {
		return nil, err
	}
	parts := max(sl.partitions, sr.partitions)
	if len(o.LeftKeys) == 0 {
		// Cross product (no equi keys extracted): all rows meet in a single
		// bucket, so one partition does the work.
		parts = 1
	}
	buildKeys := make([]runtime.Evaluator, len(o.LeftKeys))
	exchLeftKeys := make([]runtime.Evaluator, len(o.LeftKeys))
	for i, e := range o.LeftKeys {
		ev, err := exprEval(e, sl.schema)
		if err != nil {
			return nil, err
		}
		buildKeys[i] = ev
		exchLeftKeys[i], _ = exprEval(e, sl.schema)
	}
	probeKeys := make([]runtime.Evaluator, len(o.RightKeys))
	exchRightKeys := make([]runtime.Evaluator, len(o.RightKeys))
	for i, e := range o.RightKeys {
		ev, err := exprEval(e, sr.schema)
		if err != nil {
			return nil, err
		}
		probeKeys[i] = ev
		exchRightKeys[i], _ = exprEval(e, sr.schema)
	}
	combined := append(append([]Var(nil), sl.schema...), sr.schema...)
	bexch := c.closeToExchange(sl, hyracks.ExchangeHash, exchLeftKeys, parts)
	pexch := c.closeToExchange(sr, hyracks.ExchangeHash, exchRightKeys, parts)
	s := &stream{
		src: hyracks.JoinSource{Build: bexch, Probe: pexch, Spec: &hyracks.JoinSpec{
			BuildKeys: buildKeys, ProbeKeys: probeKeys, Desc: o.Label(),
		}},
		partitions: parts,
		schema:     combined,
	}
	if !isTrueConst(o.Cond) {
		ev, err := exprEval(o.Cond, s.schema)
		if err != nil {
			return nil, err
		}
		s.ops = append(s.ops, &hyracks.SelectSpec{Cond: ev, Desc: "residual " + o.Cond.String()})
	}
	return s, nil
}

func isTrueConst(e Expr) bool {
	c, ok := e.(*ConstExpr)
	if !ok || len(c.Seq) != 1 {
		return false
	}
	b, ok := c.Seq[0].(item.Bool)
	return ok && bool(b)
}

// compileNested lowers a nested (subplan) plan rooted at an Aggregate with a
// NestedTupleSource leaf into a physical op chain. The chain sees the outer
// tuple as its single input tuple.
func (c *compiler) compileNested(root Op, outerSchema []Var) ([]hyracks.OpSpec, []Var, error) {
	agg, ok := root.(*Aggregate)
	if !ok {
		return nil, nil, fmt.Errorf("algebricks: nested plan root must be AGGREGATE, got %T", root)
	}
	var build func(op Op) ([]hyracks.OpSpec, []Var, error)
	build = func(op Op) ([]hyracks.OpSpec, []Var, error) {
		switch o := op.(type) {
		case *NestedTupleSource:
			return nil, append([]Var(nil), outerSchema...), nil
		case *Assign:
			ops, schema, err := build(o.In)
			if err != nil {
				return nil, nil, err
			}
			ev, err := exprEval(o.E, schema)
			if err != nil {
				return nil, nil, err
			}
			return append(ops, &hyracks.AssignSpec{Evals: []runtime.Evaluator{ev}, Desc: o.Label()}),
				append(schema, o.V), nil
		case *Select:
			ops, schema, err := build(o.In)
			if err != nil {
				return nil, nil, err
			}
			ev, err := exprEval(o.Cond, schema)
			if err != nil {
				return nil, nil, err
			}
			return append(ops, &hyracks.SelectSpec{Cond: ev, Desc: o.Cond.String()}), schema, nil
		case *Project:
			ops, schema, err := build(o.In)
			if err != nil {
				return nil, nil, err
			}
			cols := make([]int, len(o.Vs))
			for i, v := range o.Vs {
				col, err := columnOf(schema, v)
				if err != nil {
					return nil, nil, err
				}
				cols[i] = col
			}
			return append(ops, &hyracks.ProjectSpec{Cols: cols}), append([]Var(nil), o.Vs...), nil
		case *Unnest:
			ops, schema, err := build(o.In)
			if err != nil {
				return nil, nil, err
			}
			ev, err := exprEval(o.E, schema)
			if err != nil {
				return nil, nil, err
			}
			return append(ops, &hyracks.UnnestSpec{Expr: ev, Desc: o.Label()}),
				append(schema, o.V), nil
		default:
			return nil, nil, fmt.Errorf("algebricks: unsupported nested operator %T", op)
		}
	}
	ops, schema, err := build(agg.In)
	if err != nil {
		return nil, nil, err
	}
	defs, err := c.aggDefs(agg.Aggs, schema, aggSingle)
	if err != nil {
		return nil, nil, err
	}
	ops = append(ops, &hyracks.AggregateSpec{Aggs: defs, Desc: aggList(agg.Aggs)})
	ops = fuseProjects(ops)
	outVars := make([]Var, len(agg.Aggs))
	for i, a := range agg.Aggs {
		outVars[i] = a.V
	}
	return ops, outVars, nil
}
