// Command vxq runs JSONiq queries over directories of raw JSON files.
//
// Usage:
//
//	vxq -mount /sensors=/data/sensors [flags] 'for $r in collection("/sensors")... return $r'
//	vxq -mount /sensors=/data/sensors -f query.jq
//
// Flags select the partition count, toggle the paper's rule categories, and
// switch to explain-only mode (print the plans instead of executing).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vxq"
)

type mountFlags map[string]string

func (m mountFlags) String() string {
	var parts []string
	for k, v := range m {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (m mountFlags) Set(s string) error {
	name, dir, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("mount must be name=dir, got %q", s)
	}
	m[name] = dir
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vxq:", err)
		os.Exit(1)
	}
}

func run() error {
	mounts := mountFlags{}
	fs := flag.NewFlagSet("vxq", flag.ExitOnError)
	fs.Var(mounts, "mount", "collection mount as name=dir (repeatable)")
	queryFile := fs.String("f", "", "read the query from a file instead of the command line")
	partitions := fs.Int("partitions", 1, "partitioned-parallel degree for collection scans")
	noPath := fs.Bool("no-path-rules", false, "disable the path expression rules (§4.1)")
	noPipe := fs.Bool("no-pipelining-rules", false, "disable the pipelining rules (§4.2)")
	noGroup := fs.Bool("no-groupby-rules", false, "disable the group-by rules (§4.3)")
	explain := fs.Bool("explain", false, "print the plans instead of executing")
	stats := fs.Bool("stats", false, "print execution statistics to stderr")
	profile := fs.Bool("profile", false, "print the per-operator execution profile to stderr (runs the staged executor so operator self-times account for the job wall)")
	trace := fs.String("trace", "", "write the machine-readable JSON profile trace to this file (implies profiling)")
	morselKB := fs.Int64("morsel-kb", 0, "scan morsel size in KiB (0 = default 4 MiB); large files split into byte-range morsels")
	coldIndexKB := fs.Int64("cold-index-kb", 0, "smallest file (KiB) whose first cold scan runs the boundary-index pass and persists a sidecar (0 = default 32 MiB)")
	cacheDir := fs.String("cache-dir", "", "directory for persistent structural-index sidecars (default: next to each data file)")
	noSidecars := fs.Bool("no-sidecars", false, "disable persistent index sidecars (in-memory indexes only)")
	repeat := fs.Int("repeat", 1, "run the query this many times (warm runs exercise the plan/result caches and sidecars)")
	resultCacheKB := fs.Int64("result-cache-kb", 0, "result cache budget in KiB (0 = disabled); only useful with -repeat")
	opMemKB := fs.Int64("op-mem-kb", 0, "per-operator memory budget in KiB before group-by/join/sort spill to disk (0 = never spill)")
	spillDir := fs.String("spill-dir", "", "directory for operator spill files (default: the OS temp dir)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var query string
	switch {
	case *queryFile != "":
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		query = string(b)
	case fs.NArg() == 1:
		query = fs.Arg(0)
	default:
		fs.Usage()
		return fmt.Errorf("expected exactly one query (or -f file)")
	}

	eng := vxq.New(vxq.Options{
		Partitions:             *partitions,
		DisablePathRules:       *noPath,
		DisablePipeliningRules: *noPipe,
		DisableGroupByRules:    *noGroup,
		MorselSize:             *morselKB << 10,
		ColdIndexMinBytes:      *coldIndexKB << 10,
		CacheDir:               *cacheDir,
		DisableSidecars:        *noSidecars,
		ResultCacheBytes:       *resultCacheKB << 10,
		OpMemoryBudget:         *opMemKB << 10,
		SpillDir:               *spillDir,
		Profile:                *profile || *trace != "",
		// -profile renders per-operator self times that should sum to the
		// job wall; only the staged executor gives that accounting (the
		// pipelined executor's times include channel blocking).
		Staged: *profile,
	})
	for name, dir := range mounts {
		eng.Mount(name, dir)
	}

	if *explain {
		orig, opt, phys, err := eng.Explain(query)
		if err != nil {
			return err
		}
		fmt.Println("-- original logical plan --")
		fmt.Print(orig)
		fmt.Println("-- optimized logical plan --")
		fmt.Print(opt)
		fmt.Println("-- physical plan --")
		fmt.Print(phys)
		return nil
	}

	var res *vxq.Result
	for i := 0; i < *repeat; i++ {
		r, err := eng.Query(query)
		if err != nil {
			return err
		}
		res = r
	}
	if res == nil {
		return fmt.Errorf("-repeat must be >= 1")
	}
	for _, it := range res.Items {
		fmt.Println(vxq.JSON(it))
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "items: %d  files: %d  bytes read: %d  tuples: %d  shuffled: %d  peak memory: %d\n",
			len(res.Items), res.Stats.FilesRead, res.Stats.BytesRead,
			res.Stats.TuplesProduced, res.Stats.BytesShuffled, res.PeakMemory)
		if res.Stats.SpilledBytes > 0 {
			fmt.Fprintf(os.Stderr, "spill: bytes: %d  partitions: %d  waves: %d\n",
				res.Stats.SpilledBytes, res.Stats.SpillPartitions, res.Stats.SpillWaves)
		}
		cs := eng.CacheStats()
		fmt.Fprintf(os.Stderr, "cache: plan hit=%v result hit=%v  files skipped: %d  morsels skipped: %d  cold index builds: %d  sidecars loaded/written: %d/%d\n",
			res.Cache.PlanHit, res.Cache.ResultHit,
			res.Stats.FilesSkipped, res.Stats.MorselsSkipped, res.Stats.ColdIndexBuilds,
			cs.SidecarLoads, cs.SidecarWrites)
	}
	if *profile && res.Profile != nil {
		fmt.Fprint(os.Stderr, res.Profile.String())
	}
	if *trace != "" && res.Profile != nil {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		if err := res.Profile.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
