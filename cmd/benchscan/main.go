// Command benchscan measures the morsel-driven scan scheduler on the skew
// acceptance workload (one oversized file next to many small ones, versus
// the same bytes spread evenly) and writes the results as JSON — the
// BENCH_scan.json artifact produced by `make bench`.
//
// Usage:
//
//	benchscan [-full] [-partitions 8] [-runs 3] [-out BENCH_scan.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vxq/internal/bench"
	"vxq/internal/hyracks"
	"vxq/internal/runtime"
)

type runReport struct {
	Workload   string      `json:"workload"`
	Seconds    float64     `json:"seconds"`
	MBPerSec   float64     `json:"mb_per_sec"`
	BytesRead  int64       `json:"bytes_read"`
	Tuples     int64       `json:"tuples"`
	Morsels    map[int]int `json:"morsels_by_partition"`
	MaxTaskSec float64     `json:"max_scan_task_seconds"`
}

type report struct {
	Scale      bench.ScanScale `json:"scale"`
	TotalBytes int64           `json:"total_bytes"`
	Partitions int             `json:"partitions"`
	Runs       int             `json:"runs"`
	Skewed     runReport       `json:"skewed"`
	Uniform    runReport       `json:"uniform"`
	SkewRatio  float64         `json:"skew_ratio"`
}

func main() {
	full := flag.Bool("full", false, "acceptance scale (1x64MiB + 31x2MiB) instead of the quick scale")
	partitions := flag.Int("partitions", 8, "scan partitions")
	runs := flag.Int("runs", 3, "timed runs per workload (best run is reported)")
	out := flag.String("out", "BENCH_scan.json", "output file")
	flag.Parse()

	scale := bench.QuickScanScale()
	if *full {
		scale = bench.FullScanScale()
	}
	skSrc, total := bench.SkewedScanSource(scale)
	unSrc, _ := bench.UniformScanSource(scale)

	sk, err := measure("skewed", skSrc, *partitions, scale.MorselSize, *runs)
	if err != nil {
		fatal(err)
	}
	un, err := measure("uniform", unSrc, *partitions, scale.MorselSize, *runs)
	if err != nil {
		fatal(err)
	}
	rep := report{
		Scale:      scale,
		TotalBytes: total,
		Partitions: *partitions,
		Runs:       *runs,
		Skewed:     sk,
		Uniform:    un,
		SkewRatio:  sk.Seconds / un.Seconds,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("skewed %.3fs, uniform %.3fs, ratio %.2fx -> %s\n",
		sk.Seconds, un.Seconds, rep.SkewRatio, *out)
}

// measure times the scan-count job, keeping the best of n runs (the usual
// benchmarking convention: the minimum is the least-noise estimate).
func measure(name string, src runtime.Source, partitions int, morselSize int64, runs int) (runReport, error) {
	best := runReport{Workload: name}
	for i := 0; i < runs; i++ {
		res, elapsed, err := bench.RunScanCount(src, partitions, morselSize)
		if err != nil {
			return runReport{}, fmt.Errorf("%s run %d: %w", name, i, err)
		}
		if best.Seconds == 0 || elapsed.Seconds() < best.Seconds {
			best.Seconds = elapsed.Seconds()
			best.BytesRead = res.Stats.BytesRead
			best.Tuples = res.Stats.TuplesProduced
			best.Morsels = bench.MorselsByPartition(res)
			best.MaxTaskSec = maxScanTask(res)
			best.MBPerSec = float64(res.Stats.BytesRead) / (1 << 20) / elapsed.Seconds()
		}
	}
	return best, nil
}

func maxScanTask(res *hyracks.Result) float64 {
	var max time.Duration
	for _, tt := range res.Tasks {
		if tt.Fragment == 0 && tt.Elapsed > max {
			max = tt.Elapsed
		}
	}
	return max.Seconds()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchscan:", err)
	os.Exit(1)
}
