// Command benchscan measures the morsel-driven scan scheduler on the skew
// acceptance workload (one oversized file next to many small ones, versus
// the same bytes spread evenly) and writes the results as JSON — the
// BENCH_scan.json artifact produced by `make bench`. With -parse it instead
// measures the on-demand parse kernel (structural raw-skip vs the
// token-level reference) on the project-1-field and skip-whole-record
// shapes, writing BENCH_parse.json. With -query it measures the binary
// tuple kernel (encoded-key group-by, hash shuffle, hash join vs the eager
// reference), writing BENCH_query.json. With -cache it measures cold versus
// warm latency of repeated queries over an on-disk collection — structural
// index sidecars, the compiled-plan cache and the result cache — writing
// BENCH_cache.json (and failing if any cache-layer acceptance gate fails).
//
// Usage:
//
//	benchscan [-full] [-partitions 8] [-runs 3] [-out BENCH_scan.json]
//	benchscan -parse [-parsedur 1s] [-workers 1,2,4,8] [-out BENCH_parse.json]
//	benchscan -query [-querytuples 200000] [-querydur 1s] [-out BENCH_query.json]
//	benchscan -cache [-cacherepeats 32] [-cacheconc 4] [-out BENCH_cache.json]
//	benchscan -spill [-spillfactor 4] [-out BENCH_spill.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vxq/internal/bench"
	"vxq/internal/hyracks"
	"vxq/internal/runtime"
)

type runReport struct {
	Workload   string      `json:"workload"`
	Seconds    float64     `json:"seconds"`
	MBPerSec   float64     `json:"mb_per_sec"`
	BytesRead  int64       `json:"bytes_read"`
	Tuples     int64       `json:"tuples"`
	Morsels    map[int]int `json:"morsels_by_partition"`
	MaxTaskSec float64     `json:"max_scan_task_seconds"`
}

type report struct {
	Scale      bench.ScanScale `json:"scale"`
	TotalBytes int64           `json:"total_bytes"`
	Partitions int             `json:"partitions"`
	Runs       int             `json:"runs"`
	Skewed     runReport       `json:"skewed"`
	Uniform    runReport       `json:"uniform"`
	SkewRatio  float64         `json:"skew_ratio"`
}

func main() {
	full := flag.Bool("full", false, "acceptance scale (1x64MiB + 31x2MiB) instead of the quick scale")
	partitions := flag.Int("partitions", 8, "scan partitions")
	runs := flag.Int("runs", 3, "timed runs per workload (best run is reported)")
	out := flag.String("out", "", "output file (default BENCH_scan.json, or BENCH_parse.json with -parse)")
	parse := flag.Bool("parse", false, "measure the parse kernel instead of the scan scheduler")
	parseDur := flag.Duration("parsedur", time.Second, "minimum timed duration per parse-kernel configuration")
	parseWorkers := flag.String("workers", "1,2,4,8", "comma-separated worker counts of the parallel-builder rows (with -parse)")
	query := flag.Bool("query", false, "measure the binary tuple kernel (group-by/shuffle/join) instead of the scan scheduler")
	queryDur := flag.Duration("querydur", time.Second, "minimum timed duration per query-kernel configuration")
	queryTuples := flag.Int("querytuples", 200_000, "input tuples per query-kernel shape")
	cache := flag.Bool("cache", false, "measure cold vs warm repeated queries (sidecars + plan/result caches) instead of the scan scheduler")
	cacheRepeats := flag.Int("cacherepeats", 32, "timed warm executions per query (with -cache)")
	cacheConc := flag.Int("cacheconc", 4, "goroutines sharing the warm engine (with -cache)")
	spillFlag := flag.Bool("spill", false, "measure the out-of-core operators (grace-hash group-by/join, external merge sort) against their in-memory runs")
	spillFactor := flag.Float64("spillfactor", 4, "dataset scale factor of the spill benchmark (with -spill)")
	flag.Parse()

	if *spillFlag {
		if *out == "" {
			*out = "BENCH_spill.json"
		}
		if err := runSpillBench(*out, *spillFactor); err != nil {
			fatal(err)
		}
		return
	}

	if *cache {
		if *out == "" {
			*out = "BENCH_cache.json"
		}
		if err := runCacheBench(*out, *cacheRepeats, *cacheConc); err != nil {
			fatal(err)
		}
		return
	}

	if *parse {
		if *out == "" {
			*out = "BENCH_parse.json"
		}
		workers, err := parseWorkerList(*parseWorkers)
		if err != nil {
			fatal(err)
		}
		if err := runParseBench(*out, *parseDur, workers); err != nil {
			fatal(err)
		}
		return
	}
	if *query {
		if *out == "" {
			*out = "BENCH_query.json"
		}
		if err := runQueryBench(*out, *queryTuples, *queryDur); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_scan.json"
	}

	scale := bench.QuickScanScale()
	if *full {
		scale = bench.FullScanScale()
	}
	skSrc, total := bench.SkewedScanSource(scale)
	unSrc, _ := bench.UniformScanSource(scale)

	sk, err := measure("skewed", skSrc, *partitions, scale.MorselSize, *runs)
	if err != nil {
		fatal(err)
	}
	un, err := measure("uniform", unSrc, *partitions, scale.MorselSize, *runs)
	if err != nil {
		fatal(err)
	}
	rep := report{
		Scale:      scale,
		TotalBytes: total,
		Partitions: *partitions,
		Runs:       *runs,
		Skewed:     sk,
		Uniform:    un,
		SkewRatio:  sk.Seconds / un.Seconds,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("skewed %.3fs, uniform %.3fs, ratio %.2fx -> %s\n",
		sk.Seconds, un.Seconds, rep.SkewRatio, *out)
}

// measure times the scan-count job, keeping the best of n runs (the usual
// benchmarking convention: the minimum is the least-noise estimate).
func measure(name string, src runtime.Source, partitions int, morselSize int64, runs int) (runReport, error) {
	best := runReport{Workload: name}
	for i := 0; i < runs; i++ {
		res, elapsed, err := bench.RunScanCount(src, partitions, morselSize)
		if err != nil {
			return runReport{}, fmt.Errorf("%s run %d: %w", name, i, err)
		}
		if best.Seconds == 0 || elapsed.Seconds() < best.Seconds {
			best.Seconds = elapsed.Seconds()
			best.BytesRead = res.Stats.BytesRead
			best.Tuples = res.Stats.TuplesProduced
			best.Morsels = bench.MorselsByPartition(res)
			best.MaxTaskSec = maxScanTask(res)
			best.MBPerSec = float64(res.Stats.BytesRead) / (1 << 20) / elapsed.Seconds()
		}
	}
	return best, nil
}

func maxScanTask(res *hyracks.Result) float64 {
	var max time.Duration
	for _, tt := range res.Tasks {
		if tt.Fragment == 0 && tt.Elapsed > max {
			max = tt.Elapsed
		}
	}
	return max.Seconds()
}

// parseShapeReport holds the three skip-mode measurements of one shape —
// the SWAR structural-index kernel, the byte-class scan and the token-level
// reference — with the resulting speedups (reference seconds over the mode's
// seconds).
type parseShapeReport struct {
	Index        bench.ParseBenchResult `json:"index"`
	Bytes        bench.ParseBenchResult `json:"bytes"`
	Reference    bench.ParseBenchResult `json:"reference"`
	Speedup      float64                `json:"speedup"`       // reference / index
	SpeedupBytes float64                `json:"speedup_bytes"` // reference / bytes
}

type parseReport struct {
	RecordBytes   int64                       `json:"record_bytes"`
	Records       int64                       `json:"records"`
	TotalBytes    int64                       `json:"total_bytes"`
	BitmapBuilder bench.BitmapBuilderResult   `json:"bitmap_builder"`
	Shapes        map[string]parseShapeReport `json:"shapes"`
	// ParallelBuilder holds the speculative parallel builder's scaling rows:
	// the sequential BoundaryScanner baseline (workers == 0, speedup == 1)
	// followed by one row per requested worker count, over a 64 MiB stream.
	ParallelBuilder []bench.ParallelBuilderResult `json:"parallel_builder"`
}

// parseWorkerList parses the -workers flag ("1,2,4,8") into worker counts.
func parseWorkerList(s string) ([]int, error) {
	var workers []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		workers = append(workers, w)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("-workers lists no worker counts")
	}
	return workers, nil
}

// runParseBench measures the three skip modes on both acceptance shapes,
// plus the standalone phase-1 bitmap builder and the speculative parallel
// builder's scaling rows, and writes the BENCH_parse.json artifact.
func runParseBench(out string, minDur time.Duration, workers []int) error {
	data, records := bench.ParseBenchStream(4 << 20)
	rep := parseReport{
		RecordBytes: int64(len(data)) / int64(records),
		Records:     int64(records),
		TotalBytes:  int64(len(data)),
		Shapes:      map[string]parseShapeReport{},
	}
	for _, shape := range []string{"project1", "skiprecord"} {
		idx, err := bench.MeasureParseBench(shape, "index", data, records, minDur)
		if err != nil {
			return err
		}
		byt, err := bench.MeasureParseBench(shape, "bytes", data, records, minDur)
		if err != nil {
			return err
		}
		ref, err := bench.MeasureParseBench(shape, "reference", data, records, minDur)
		if err != nil {
			return err
		}
		rep.Shapes[shape] = parseShapeReport{
			Index:        idx,
			Bytes:        byt,
			Reference:    ref,
			Speedup:      ref.Seconds / idx.Seconds,
			SpeedupBytes: ref.Seconds / byt.Seconds,
		}
		fmt.Printf("%s: index %.0f MB/s (%.4f allocs/record), bytes %.0f MB/s, reference %.0f MB/s, speedup %.2fx\n",
			shape, idx.MBPerSec, idx.AllocsPerRecord, byt.MBPerSec, ref.MBPerSec, rep.Shapes[shape].Speedup)
	}
	rep.BitmapBuilder = bench.MeasureBitmapBuilder(data, minDur)
	fmt.Printf("bitmap builder: %.2f GB/s, %.4f allocs/chunk\n",
		rep.BitmapBuilder.GBPerSec, rep.BitmapBuilder.AllocsPerChunk)
	bigData, _ := bench.ParseBenchStream(64 << 20)
	pb, err := bench.MeasureParallelBuilder(bigData, workers, minDur)
	if err != nil {
		return err
	}
	rep.ParallelBuilder = pb
	for _, r := range pb {
		if r.Workers == 0 {
			fmt.Printf("parallel builder baseline (sequential): %.0f MB/s over %d MiB\n",
				r.MBPerSec, r.Bytes>>20)
			continue
		}
		fmt.Printf("parallel builder %d workers: %.0f MB/s (%.2fx)\n", r.Workers, r.MBPerSec, r.Speedup)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("-> %s\n", out)
	return nil
}

// queryShapeReport pairs the encoded and eager measurements of one shape
// with the resulting speedup, plus the profiled kernel run and its relative
// overhead (profiled/encoded seconds).
type queryShapeReport struct {
	Encoded         bench.QueryBenchResult `json:"encoded"`
	Eager           bench.QueryBenchResult `json:"eager"`
	Profiled        bench.QueryBenchResult `json:"profiled"`
	Speedup         float64                `json:"speedup"`
	ProfileOverhead float64                `json:"profile_overhead"`
}

type queryReport struct {
	Tuples int                         `json:"tuples"`
	Keys   int                         `json:"keys"`
	Shapes map[string]queryShapeReport `json:"shapes"`
}

// runQueryBench measures the binary tuple kernel against the eager reference
// on the group-by, hash-shuffle and hash-join shapes and writes the
// BENCH_query.json artifact.
func runQueryBench(out string, tuples int, minDur time.Duration) error {
	rep := queryReport{Tuples: tuples, Keys: bench.QueryBenchKeys, Shapes: map[string]queryShapeReport{}}
	for _, shape := range []string{"groupby", "shuffle", "join"} {
		enc, err := bench.MeasureQueryBench(shape, "encoded", tuples, minDur)
		if err != nil {
			return err
		}
		eag, err := bench.MeasureQueryBench(shape, "eager", tuples, minDur)
		if err != nil {
			return err
		}
		prof, err := bench.MeasureQueryBench(shape, "profiled", tuples, minDur)
		if err != nil {
			return err
		}
		rep.Shapes[shape] = queryShapeReport{
			Encoded:         enc,
			Eager:           eag,
			Profiled:        prof,
			Speedup:         eag.Seconds / enc.Seconds,
			ProfileOverhead: prof.Seconds / enc.Seconds,
		}
		fmt.Printf("%s: encoded %.2f Mtuples/s (%.4f allocs/tuple), eager %.2f Mtuples/s, speedup %.2fx, profiled overhead %.3fx\n",
			shape, enc.MTuplesPerSec, enc.AllocsPerTuple, eag.MTuplesPerSec,
			rep.Shapes[shape].Speedup, rep.Shapes[shape].ProfileOverhead)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("-> %s\n", out)
	return nil
}

// runSpillBench runs the out-of-core acceptance benchmark (the harness
// enforces its own gates: byte-identical results, real spilling, accountant
// zero, bounded high-water, empty spill directory) and writes BENCH_spill.json.
func runSpillBench(out string, factor float64) error {
	results, err := bench.RunSpillBench(bench.Settings{Factor: factor})
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%s: input %.1fx over %d KiB budget, spilled %d KiB in %d partitions / %d waves, peak %d -> %d KiB, slowdown %.2fx\n",
			r.Query, r.OverBudget, r.BudgetBytes>>10, r.Spilled.SpilledBytes>>10,
			r.Spilled.SpillPartitions, r.Spilled.SpillWaves,
			r.InMemory.PeakMemory>>10, r.Spilled.PeakMemory>>10, r.Slowdown)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("-> %s\n", out)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchscan:", err)
	os.Exit(1)
}
