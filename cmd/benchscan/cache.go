package main

import (
	"encoding/json"
	"os"

	"vxq"
	"vxq/internal/bench"
)

// cacheEngine adapts vxq.Engine to bench.CacheEngine (the bench package
// cannot import vxq — the root package's benchmarks import bench).
type cacheEngine struct{ eng *vxq.Engine }

func (e cacheEngine) Query(q string) (bench.CacheRunStats, error) {
	res, err := e.eng.Query(q)
	if err != nil {
		return bench.CacheRunStats{}, err
	}
	return bench.CacheRunStats{
		Items:           len(res.Items),
		PlanHit:         res.Cache.PlanHit,
		ResultHit:       res.Cache.ResultHit,
		FilesSkipped:    res.Stats.FilesSkipped,
		MorselsSkipped:  res.Stats.MorselsSkipped,
		ColdIndexBuilds: res.Stats.ColdIndexBuilds,
	}, nil
}

func (e cacheEngine) BuildIndex(collection, pathExpr string) error {
	return e.eng.BuildIndex(collection, pathExpr)
}

func (e cacheEngine) SidecarStats() bench.CacheSidecarStats {
	cs := e.eng.CacheStats()
	return bench.CacheSidecarStats{Loads: cs.SidecarLoads, Misses: cs.SidecarMisses, Writes: cs.SidecarWrites}
}

// cacheBenchEngine opens a fresh engine over the benchmark dataset. The
// morsel size and cold-index gate are shrunk so the benchmark's modest files
// still split into byte-range morsels and the first scan pays (and persists)
// the structural-index pass, exactly as a multi-gigabyte file would under
// the defaults.
func cacheBenchEngine(dir string, resultCache bool) (bench.CacheEngine, error) {
	opts := vxq.Options{
		Partitions:        2,
		MorselSize:        64 << 10,
		ColdIndexMinBytes: 1,
		IndexZoneGrain:    16 << 10,
	}
	if resultCache {
		opts.ResultCacheBytes = 16 << 20
	}
	eng := vxq.New(opts)
	eng.Mount("/sensors", dir)
	return cacheEngine{eng}, nil
}

func runCacheBench(out string, repeats, concurrency int) error {
	rep, err := bench.RunCacheBench(
		bench.CacheBenchConfig{Repeats: repeats, Concurrency: concurrency}, cacheBenchEngine)
	if err != nil {
		return err
	}
	if err := rep.Check(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}
