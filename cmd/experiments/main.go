// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§5). Each experiment runs the real engine (and the
// comparison-system simulators) on scaled workloads and prints the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -list           # list experiment ids
//	experiments -run fig14      # one experiment
//	experiments -factor 4       # 4x larger workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vxq/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	list := flag.Bool("list", false, "list experiments and exit")
	only := flag.String("run", "", "run a single experiment by id (e.g. fig14, tab3)")
	factor := flag.Float64("factor", 1, "workload scale factor")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}

	settings := bench.Settings{Factor: *factor}
	exps := bench.All()
	if *only != "" {
		e, ok := bench.Lookup(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *only)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(settings)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("### %s — %s (%s) [%v]\n\n", e.ID, e.Paper, e.Title, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	return nil
}
