// Command gendata generates synthetic NOAA GHCN-Daily-like JSON sensor
// collections with the structure of the paper's dataset (§5.1).
//
// Usage:
//
//	gendata -out /data/sensors -files 100 -records 32 -measurements 30
package main

import (
	"flag"
	"fmt"
	"os"

	"vxq/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := gen.Default()
	out := flag.String("out", "", "output directory (required)")
	flag.IntVar(&cfg.Files, "files", cfg.Files, "number of JSON files")
	flag.IntVar(&cfg.RecordsPerFile, "records", cfg.RecordsPerFile, "records per file (root array members)")
	flag.IntVar(&cfg.MeasurementsPerArray, "measurements", cfg.MeasurementsPerArray, "measurements per results array")
	flag.IntVar(&cfg.Stations, "stations", cfg.Stations, "number of distinct stations")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "PRNG seed")
	flag.BoolVar(&cfg.SplitRecords, "split", cfg.SplitRecords, "write each record as its own newline-terminated document so large files split into scan morsels")
	targetMB := flag.Int64("target-mb", 0, "scale the file count so the collection is about this many MB (overrides -files)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}
	if *targetMB > 0 {
		cfg = cfg.ScaleToBytes(*targetMB << 20)
	}
	total, err := cfg.WriteDir(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d files, %.2f MB, %d measurements to %s\n",
		cfg.Files, float64(total)/(1<<20), cfg.Measurements(), *out)
	return nil
}
