package vxq

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section (regenerating its rows via internal/bench),
// plus the ablation benchmarks called out in DESIGN.md §6 and
// micro-benchmarks of the engine's hot paths.
//
// Run everything:     go test -bench=. -benchmem
// One figure:         go test -bench=BenchmarkFig14
// Full tables:        go run ./cmd/experiments [-run fig14] [-factor 4]

import (
	"fmt"
	"testing"

	"vxq/internal/bench"
	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/gen"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(bench.Settings{})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// One bench target per paper table/figure.
func BenchmarkFig13PathRules(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14PipeliningRules(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkFig15GroupByRules(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16DataSizes(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkFig17SingleNodeSpeedup(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18aDocSizeQueryTime(b *testing.B) { benchExperiment(b, "fig18a") }
func BenchmarkFig18bSpace(b *testing.B)            { benchExperiment(b, "fig18b") }
func BenchmarkTable1LoadTimes(b *testing.B)        { benchExperiment(b, "tab1") }
func BenchmarkFig19SparkVsVXQuery(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkTable2SparkLoad(b *testing.B)        { benchExperiment(b, "tab2") }
func BenchmarkTable3Memory(b *testing.B)           { benchExperiment(b, "tab3") }
func BenchmarkFig20ClusterSpeedup(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkFig21ClusterScaleup(b *testing.B)    { benchExperiment(b, "fig21") }
func BenchmarkFig22VsAsterixSpeedup(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23VsAsterixScaleup(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24VsMongoSpeedup(b *testing.B)    { benchExperiment(b, "fig24") }
func BenchmarkFig25VsMongoScaleup(b *testing.B)    { benchExperiment(b, "fig25") }
func BenchmarkTable4MongoLoad(b *testing.B)        { benchExperiment(b, "tab4") }

// --- ablation benchmarks (DESIGN.md §6) --------------------------------------

func benchDataset(b *testing.B, files int) runtime.Source {
	b.Helper()
	cfg := gen.Default()
	cfg.Files = files
	cfg.RecordsPerFile = 8
	docs, _, err := cfg.InMemory()
	if err != nil {
		b.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func benchRun(b *testing.B, query string, rules core.RuleConfig, partitions, frameSize int, src runtime.Source) {
	b.Helper()
	c, err := core.CompileQuery(query, core.Options{Rules: rules, Partitions: partitions})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := &hyracks.Env{Source: src, FrameSize: frameSize}
		res, err := hyracks.RunStaged(c.Job, env)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 && query != bench.QueryQ2 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkAblationDataScanArgument isolates the DATASCAN second argument
// (streaming projection): with the full pipelining rules vs record-boundary
// merging only (everything else identical). The paper attributes the
// biggest win to this argument (Fig. 14, Q0b discussion).
func BenchmarkAblationDataScanArgument(b *testing.B) {
	src := benchDataset(b, 6)
	withArg := core.AllRules()
	withoutArg := core.AllRules()
	withoutArg.NoProjectionPushdown = true
	b.Run("projection-pushdown", func(b *testing.B) {
		benchRun(b, bench.QueryQ0b, withArg, 1, 0, src)
	})
	b.Run("record-materialization", func(b *testing.B) {
		benchRun(b, bench.QueryQ0b, withoutArg, 1, 0, src)
	})
}

// BenchmarkAblationTwoStepAggregation compares the two-step (local/global)
// aggregation scheme against single-step repartitioning for Q1 at 4
// partitions (§4.3).
func BenchmarkAblationTwoStepAggregation(b *testing.B) {
	src := benchDataset(b, 8)
	run := func(b *testing.B, singleStep bool) {
		c, err := core.CompileQuery(bench.QueryQ1, core.Options{
			Rules:                 core.AllRules(),
			Partitions:            4,
			SingleStepAggregation: singleStep,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("two-step", func(b *testing.B) { run(b, false) })
	b.Run("single-step", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationFrameSize sweeps the dataflow frame capacity for Q0
// (DESIGN.md §6 item 3).
func BenchmarkAblationFrameSize(b *testing.B) {
	src := benchDataset(b, 6)
	for _, size := range []int{4 << 10, 32 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			benchRun(b, bench.QueryQ0, core.AllRules(), 1, size, src)
		})
	}
}

// BenchmarkAblationJoinStrategy compares the extracted hash join against
// the cross-product fallback for Q2 on a deliberately tiny dataset (the
// cross product is quadratic).
func BenchmarkAblationJoinStrategy(b *testing.B) {
	cfg := gen.Default()
	cfg.Files = 2
	cfg.RecordsPerFile = 2
	cfg.MeasurementsPerArray = 10
	docs, _, err := cfg.InMemory()
	if err != nil {
		b.Fatal(err)
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}

	b.Run("hash-join", func(b *testing.B) {
		benchRun(b, bench.QueryQ2, core.AllRules(), 1, 0, src)
	})
	b.Run("cross-product", func(b *testing.B) {
		rules := core.AllRules()
		rules.NoJoinExtraction = true
		benchRun(b, bench.QueryQ2, rules, 1, 0, src)
	})
}

// --- micro-benchmarks ----------------------------------------------------

func BenchmarkMicroStreamingProjector(b *testing.B) {
	cfg := gen.Default()
	data := cfg.File(0)
	path := jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("date"),
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := jsonparse.Project(data, path, func(item.Item) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no items")
		}
	}
}

func BenchmarkMicroFullParse(b *testing.B) {
	cfg := gen.Default()
	data := cfg.File(0)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := jsonparse.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroItemEncodeDecode(b *testing.B) {
	doc, err := jsonparse.Parse(gen.Default().File(0))
	if err != nil {
		b.Fatal(err)
	}
	enc := item.Encode(nil, doc)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := item.Encode(nil, doc)
		if _, _, err := item.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFrameAppend(b *testing.B) {
	fields := frame.EncodeFields([]item.Sequence{
		item.Single(item.String("2013-12-25T00:00")),
		item.Single(item.Number(42)),
	})
	fr := frame.New(32 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !fr.AppendTuple(fields) {
			fr.Reset()
		}
	}
}
