package vxq

import (
	"encoding/json"
	"testing"

	"vxq/internal/bench"
)

// benchCacheEngine adapts Engine to bench.CacheEngine for the smoke test
// (internal/bench cannot import this package: this package's benchmarks
// import it).
type benchCacheEngine struct{ eng *Engine }

func (e benchCacheEngine) Query(q string) (bench.CacheRunStats, error) {
	res, err := e.eng.Query(q)
	if err != nil {
		return bench.CacheRunStats{}, err
	}
	return bench.CacheRunStats{
		Items:           len(res.Items),
		PlanHit:         res.Cache.PlanHit,
		ResultHit:       res.Cache.ResultHit,
		FilesSkipped:    res.Stats.FilesSkipped,
		MorselsSkipped:  res.Stats.MorselsSkipped,
		ColdIndexBuilds: res.Stats.ColdIndexBuilds,
	}, nil
}

func (e benchCacheEngine) BuildIndex(collection, pathExpr string) error {
	return e.eng.BuildIndex(collection, pathExpr)
}

func (e benchCacheEngine) SidecarStats() bench.CacheSidecarStats {
	cs := e.eng.CacheStats()
	return bench.CacheSidecarStats{Loads: cs.SidecarLoads, Misses: cs.SidecarMisses, Writes: cs.SidecarWrites}
}

// TestCacheBenchSmoke runs the BENCH_cache.json benchmark at reduced scale
// and applies its acceptance gates: warm repeats >= 3x faster than cold with
// every repeat hitting the plan and result caches, zero structural-index
// rebuilds on any sidecar-warm scan, and file- plus morsel-level skips on
// the selective case. It then validates the report's JSON schema, which CI
// relies on when it publishes the artifact.
func TestCacheBenchSmoke(t *testing.T) {
	factory := func(dir string, resultCache bool) (bench.CacheEngine, error) {
		opts := Options{
			Partitions:        2,
			MorselSize:        64 << 10,
			ColdIndexMinBytes: 1,
			IndexZoneGrain:    16 << 10,
		}
		if resultCache {
			opts.ResultCacheBytes = 16 << 20
		}
		eng := New(opts)
		eng.Mount("/sensors", dir)
		return benchCacheEngine{eng}, nil
	}
	rep, err := bench.RunCacheBench(bench.CacheBenchConfig{
		Dir:                  t.TempDir(),
		Files:                4,
		RecordsPerFile:       96,
		MeasurementsPerArray: 20,
		Repeats:              8,
		Concurrency:          4,
		ScanRepeats:          4,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	for _, q := range rep.Queries {
		t.Logf("%s: cold %.4fs, warm scan %.4fs (%.1fx), hot repeat %.6fs (%.0fx)",
			q.Name, q.ColdSeconds, q.WarmScanSeconds, q.WarmScanSpeedup, q.WarmSeconds, q.Speedup)
	}
	t.Logf("selective: %d items, %d files skipped, %d morsels skipped",
		rep.Selective.Items, rep.Selective.FilesSkipped, rep.Selective.MorselsSkipped)

	// Schema: the keys CI's published artifact promises.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"dataset", "repeats", "concurrency", "queries", "selective"} {
		if _, ok := m[k]; !ok {
			t.Errorf("report is missing top-level key %q", k)
		}
	}
	queries, ok := m["queries"].([]any)
	if !ok || len(queries) != 3 {
		t.Fatalf("queries = %v, want 3 entries", m["queries"])
	}
	for i, qv := range queries {
		q, ok := qv.(map[string]any)
		if !ok {
			t.Fatalf("queries[%d] is not an object", i)
		}
		for _, k := range []string{
			"name", "query", "items",
			"cold_seconds", "cold_index_builds", "sidecar_writes",
			"warm_scan_seconds", "warm_scan_repeats", "warm_scan_plan_hits",
			"warm_scan_cold_index_builds", "warm_scan_sidecar_loads", "warm_scan_speedup",
			"warm_seconds", "warm_repeats", "warm_result_hits",
			"warm_cold_index_builds", "speedup",
		} {
			if _, ok := q[k]; !ok {
				t.Errorf("queries[%d] is missing key %q", i, k)
			}
		}
	}
	sel, ok := m["selective"].(map[string]any)
	if !ok {
		t.Fatalf("selective is not an object")
	}
	for _, k := range []string{
		"query", "items", "seconds",
		"files_skipped", "morsels_skipped", "cold_index_builds", "sidecar_loads",
	} {
		if _, ok := sel[k]; !ok {
			t.Errorf("selective is missing key %q", k)
		}
	}
}
